// Sharded control plane tests (ctest -L federation): the ShardMap fleet
// partition, the FederationPlane's gossip ordering / staleness / global-view
// semantics, the auditor's federated bind and gossip-monotonicity rules,
// and end-to-end audited multi-shard runs — including fabric partitions on
// the gossip endpoints and bit-identical fingerprints across the experiment
// thread budget.
#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/builder.h"
#include "core/phoenix.h"
#include "federation/plane.h"
#include "federation/shard_map.h"
#include "net/fabric.h"
#include "obs/audit.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

using federation::FederationConfig;
using federation::FederationPlane;
using federation::kNoShard;
using federation::ShardMap;

cluster::Cluster MakeFleet(std::size_t n, std::uint64_t seed = 7) {
  return cluster::BuildCluster({.num_machines = n, .seed = seed});
}

trace::Trace MakeTrace(std::size_t jobs, std::size_t workers,
                       std::uint64_t seed = 7) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = jobs;
  gen.num_workers = workers;
  gen.target_load = 0.6;
  gen.seed = seed;
  return trace::GenerateTrace("google", gen);
}

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

// ---- ShardMap -------------------------------------------------------------

TEST(ShardMap, RangesPartitionTheFleet) {
  const ShardMap map(10, 3);
  EXPECT_EQ(map.num_shards(), 3u);
  cluster::MachineId next = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    const auto [lo, hi] = map.range(s);
    EXPECT_EQ(lo, next);  // contiguous, no gaps, no overlap
    EXPECT_LT(lo, hi);
    EXPECT_EQ(map.endpoint(s), lo);
    next = hi;
  }
  EXPECT_EQ(next, 10u);  // covers the whole fleet
  for (cluster::MachineId m = 0; m < 10; ++m) {
    const std::uint32_t s = map.shard_of(m);
    const auto [lo, hi] = map.range(s);
    EXPECT_GE(m, lo);
    EXPECT_LT(m, hi);
  }
  EXPECT_EQ(map.max_span(), 4u);  // ceil(10/3): the per-tick scan bound
}

TEST(ShardMap, SingleShardOwnsEverything) {
  const ShardMap map(7, 1);
  EXPECT_EQ(map.range(0).first, 0u);
  EXPECT_EQ(map.range(0).second, 7u);
  EXPECT_EQ(map.max_span(), 7u);
  for (cluster::MachineId m = 0; m < 7; ++m) {
    EXPECT_EQ(map.shard_of(m), 0u);
  }
}

// ---- FederationPlane ------------------------------------------------------

FederationConfig TwoShards(double period = 1.0, double stale = 5.0) {
  FederationConfig cfg;
  cfg.shards = 2;
  cfg.gossip_period = period;
  cfg.staleness_bound = stale;
  return cfg;
}

TEST(FederationPlane, DuplicatedGossipIsDroppedByVersionOrdering) {
  net::FabricConfig net;
  net.duplicate_rate = 0.9;  // most digests arrive (at least) twice
  sim::Engine engine;
  net::NetworkFabric fabric(engine, net, 17);
  FederationPlane plane(engine, fabric, TwoShards(), 4);
  plane.RefreshLocal(0, 1.0, 2, 1);
  plane.RefreshLocal(1, 2.0, 2, 1);
  plane.Start([&engine] { return engine.Now() < 4.5; });
  engine.Run();
  const auto& s = plane.stats();
  EXPECT_GT(s.digests_published, 0u);
  EXPECT_GT(s.digests_applied, 0u);
  // The duplicate copy carries the same version: strictly-newer-only apply
  // must drop it instead of rolling state forward twice.
  EXPECT_GT(s.digests_stale_dropped, 0u);
  EXPECT_EQ(s.digests_applied + s.digests_stale_dropped,
            fabric.stats().delivered);
}

TEST(FederationPlane, StalePeersDropOutOfGlobalViews) {
  sim::Engine engine;
  net::NetworkFabric fabric(engine, net::FabricConfig{}, 19);
  FederationPlane plane(engine, fabric, TwoShards(1.0, 2.0), 4);
  plane.RefreshLocal(0, 1.0, 2, 0);  // stamp t=0
  plane.RefreshLocal(1, 4.0, 6, 3);
  plane.OnQueuedDelta(1, 0, 0.25, +1);
  plane.OnQueuedDelta(1, 0, 0.25, +1);
  // One gossip round (shard 0 publishes at t=1.0, shard 1 at t=1.5), then
  // the chains stop so the origin stamps age past the 2 s bound.
  plane.Start([&engine] { return engine.Now() < 1.8; });
  engine.ScheduleAfter(1.9, [&] {
    ASSERT_TRUE(plane.Fresh(0, 1));  // origin stamp 0, age 1.9 <= 2
    // Live-worker weighting: (1.0*2 + 4.0*6) / 8.
    EXPECT_DOUBLE_EQ(plane.GlobalMeanWait(0), 3.25);
    std::array<std::uint64_t, cluster::kNumCrvDims> demand{};
    const auto load = plane.GlobalCrvLoad(0, &demand);
    EXPECT_DOUBLE_EQ(load[0], 0.5);  // peer's gossiped CRV load
    EXPECT_EQ(demand[0], 2u);
  });
  engine.ScheduleAfter(3.1, [&] {
    EXPECT_FALSE(plane.Fresh(0, 1));  // age 3.1 > 2: unknown, not wrong
    EXPECT_DOUBLE_EQ(plane.GlobalMeanWait(0), 1.0);  // own territory only
    const auto load = plane.GlobalCrvLoad(0, nullptr);
    EXPECT_DOUBLE_EQ(load[0], 0.0);
  });
  engine.Run();
}

TEST(FederationPlane, OnQueuedDeltaClampsLoadAndSaturatesDemand) {
  sim::Engine engine;
  net::NetworkFabric fabric(engine, net::FabricConfig{}, 23);
  FederationPlane plane(engine, fabric, TwoShards(), 4);
  plane.OnQueuedDelta(0, 2, 0.5, +1);
  plane.OnQueuedDelta(0, 2, 0.5, -1);
  plane.OnQueuedDelta(0, 2, 0.5, -1);  // over-release must not go negative
  EXPECT_DOUBLE_EQ(plane.Local(0).crv_load[2], 0.0);
  EXPECT_EQ(plane.Local(0).crv_demand[2], 0u);
}

TEST(FederationPlane, PickOffloadPeerPrefersFreshLowWaitPeers) {
  FederationConfig cfg;
  cfg.shards = 3;
  cfg.gossip_period = 1.0;
  cfg.staleness_bound = 5.0;
  sim::Engine engine;
  net::NetworkFabric fabric(engine, net::FabricConfig{}, 29);
  FederationPlane plane(engine, fabric, cfg, 6);
  // Before any gossip: no peer views exist, and the silence is not counted
  // as a staleness block (there is nothing to be stale).
  EXPECT_EQ(plane.PickOffloadPeer(0), kNoShard);
  EXPECT_EQ(plane.stats().offloads_blocked_stale, 0u);
  plane.RefreshLocal(0, 10.0, 2, 0);  // saturated home shard
  plane.RefreshLocal(1, 1.0, 2, 2);
  plane.RefreshLocal(2, 0.5, 2, 1);
  plane.Start([&engine] { return engine.Now() < 1.9; });
  engine.ScheduleAfter(2.5, [&] {
    // Both peers fresh with free slots: lowest gossiped wait wins.
    EXPECT_EQ(plane.PickOffloadPeer(0), 2u);
    // A shard with its own free slots never offloads.
    EXPECT_EQ(plane.PickOffloadPeer(1), kNoShard);
  });
  engine.Run();
}

TEST(FederationPlane, PickOffloadPeerHysteresisAndStaleBlock) {
  sim::Engine engine;
  net::NetworkFabric fabric(engine, net::FabricConfig{}, 31);
  FederationPlane plane(engine, fabric, TwoShards(1.0, 2.0), 4);
  plane.RefreshLocal(0, 1.0, 2, 0);
  plane.RefreshLocal(1, 0.9, 2, 3);  // busy-ish: inside the hysteresis band
  plane.Start([&engine] { return engine.Now() < 1.8; });
  engine.ScheduleAfter(1.9, [&] {
    // 0.9 >= offload_factor (0.8) * 1.0: not enough of a win to offload.
    EXPECT_EQ(plane.PickOffloadPeer(0), kNoShard);
    EXPECT_EQ(plane.stats().offloads_blocked_stale, 0u);
  });
  engine.ScheduleAfter(3.5, [&] {
    // The only candidate's view has aged out: blocked on staleness, and the
    // block is counted (this is the "degrade, don't guess" path).
    EXPECT_EQ(plane.PickOffloadPeer(0), kNoShard);
    EXPECT_EQ(plane.stats().offloads_blocked_stale, 1u);
  });
  engine.Run();
}

// ---- Auditor rules --------------------------------------------------------

obs::Event Ev(obs::EventType type, std::uint32_t job, std::uint32_t machine,
              std::uint32_t task, double value = 0, double time = 1.0) {
  obs::Event e;
  e.time = time;
  e.type = type;
  e.job = job;
  e.machine = machine;
  e.task = task;
  e.value = value;
  return e;
}

TEST(Auditor, FedBindSendAcceptPairIsClean) {
  obs::InvariantAuditor auditor;
  auditor.OnEvent(Ev(obs::EventType::kFedBindSend, 1, 5, 0));
  auditor.OnEvent(Ev(obs::EventType::kFedBindAccept, 1, 5, 0));
  auditor.Finish();
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.fed_binds_sent(), 1u);
  EXPECT_EQ(auditor.fed_binds_closed(), 1u);
}

TEST(Auditor, FedBindCloseWithoutSendIsViolation) {
  obs::InvariantAuditor auditor;
  auditor.OnEvent(Ev(obs::EventType::kFedBindReject, 1, 5, 0));
  EXPECT_FALSE(auditor.ok());
}

TEST(Auditor, FedBindLeftOpenIsViolationAtFinish) {
  obs::InvariantAuditor auditor;
  auditor.OnEvent(Ev(obs::EventType::kFedBindSend, 1, 5, 0));
  EXPECT_TRUE(auditor.ok());  // still in flight: legal mid-run
  auditor.Finish();
  EXPECT_FALSE(auditor.ok());
}

TEST(Auditor, FedBindDoubleSendBeforeCloseIsViolation) {
  obs::InvariantAuditor auditor;
  auditor.OnEvent(Ev(obs::EventType::kFedBindSend, 1, 5, 0));
  auditor.OnEvent(Ev(obs::EventType::kFedBindSend, 1, 6, 0));
  EXPECT_FALSE(auditor.ok());
}

TEST(Auditor, FedBindAcceptOnDrainingMachineIsViolation) {
  obs::InvariantAuditor auditor;
  auditor.OnEvent(Ev(obs::EventType::kMachineDrain, obs::kNoId, 5, obs::kNoId));
  auditor.OnEvent(Ev(obs::EventType::kFedBindSend, 1, 5, 0));
  auditor.OnEvent(Ev(obs::EventType::kFedBindAccept, 1, 5, 0));
  EXPECT_FALSE(auditor.ok());
}

TEST(Auditor, GossipApplyVersionsMustStrictlyIncrease) {
  obs::InvariantAuditor auditor;
  // machine = receiver shard, task = origin shard, value = version.
  auditor.OnEvent(Ev(obs::EventType::kGossipApply, obs::kNoId, 0, 1, 3.0));
  auditor.OnEvent(Ev(obs::EventType::kGossipApply, obs::kNoId, 0, 1, 4.0));
  // Distinct (receiver, origin) pairs are independent streams.
  auditor.OnEvent(Ev(obs::EventType::kGossipApply, obs::kNoId, 1, 0, 2.0));
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.gossip_applies(), 3u);
  // Replaying version 4 on (0, 1) means a stale digest was applied.
  auditor.OnEvent(Ev(obs::EventType::kGossipApply, obs::kNoId, 0, 1, 4.0));
  EXPECT_FALSE(auditor.ok());
}

// ---- End-to-end -----------------------------------------------------------

TEST(Federation, SingleShardConfigNeverBuildsThePlane) {
  const auto cl = MakeFleet(8);
  sim::Engine engine;
  core::PhoenixScheduler sched(engine, cl, sched::SchedulerConfig{});
  FederationConfig cfg;  // shards = 1
  sched.EnableFederation(cfg);
  EXPECT_EQ(sched.federation(), nullptr);
}

TEST(Federation, TwoShardAuditedRunGossipsAndStaysClean) {
  const auto cl = MakeFleet(30);
  const auto t = MakeTrace(300, 30);
  runner::RunOptions ro;
  ro.scheduler = "phoenix";
  ro.config.seed = 13;
  ro.obs.audit = true;  // RunSimulation aborts on any auditor violation
  ro.federation.shards = 2;
  ro.federation.gossip_period = 3.0;
  ro.federation.staleness_bound = 30.0;
  const auto report = runner::RunSimulation(t, cl, ro);
  EXPECT_GT(report.counters.fed_gossip_published, 0u);
  EXPECT_GT(report.counters.fed_gossip_applied, 0u);
  EXPECT_GT(report.counters.heartbeats, 0u);
  report.CheckInvariants();
}

// Exposes the protected fabric so the test can cut the gossip links mid-run.
class OpenPhoenix : public core::PhoenixScheduler {
 public:
  using core::PhoenixScheduler::PhoenixScheduler;
  using sched::SchedulerBase::fabric;
};

TEST(Federation, PartitionedGossipEndpointsDegradeButStayClean) {
  const auto cl = MakeFleet(24);
  const auto t = MakeTrace(240, 24);
  sim::Engine engine;
  sched::SchedulerConfig cfg;
  cfg.seed = 17;
  OpenPhoenix sched(engine, cl, cfg);
  obs::InvariantAuditor auditor;
  sched.AttachAuditor(&auditor);
  FederationConfig fed;
  fed.shards = 2;
  fed.gossip_period = 2.0;
  fed.staleness_bound = 8.0;
  sched.EnableFederation(fed);
  sched.SubmitTrace(t);
  // Cut shard 1's gossip endpoint off mid-run: digests in both directions
  // die, views age past the staleness bound, and placement must fall back
  // to home territory — degraded, never incorrect.
  const cluster::MachineId ep1 = sched.federation()->shard_map().endpoint(1);
  engine.ScheduleAfter(20.0, [&sched, ep1] {
    sched.fabric().Partition({ep1}, 120.0);
  });
  engine.Run();
  sched.FinalAudit();
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_TRUE(sched.AllJobsDone());
  EXPECT_GT(sched.fabric().stats().partition_drops, 0u);
  EXPECT_GT(sched.federation()->stats().digests_published, 0u);
  sched.BuildReport().CheckInvariants();
}

// Full-precision digest: two digests match iff the runs were bit-identical.
void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string Fingerprint(const metrics::SimReport& r) {
  std::string out;
  Append(out, "events=%llu busy=%.17g makespan=%.17g\n",
         static_cast<unsigned long long>(r.events_fired), r.total_busy_time,
         r.makespan);
  Append(out, "gossip=%llu/%llu/%llu offloads=%llu binds=%llu/%llu/%llu\n",
         static_cast<unsigned long long>(r.counters.fed_gossip_published),
         static_cast<unsigned long long>(r.counters.fed_gossip_applied),
         static_cast<unsigned long long>(r.counters.fed_gossip_stale_dropped),
         static_cast<unsigned long long>(r.counters.fed_offloads),
         static_cast<unsigned long long>(r.counters.fed_bind_attempts),
         static_cast<unsigned long long>(r.counters.fed_bind_accepts),
         static_cast<unsigned long long>(r.counters.fed_bind_rejects));
  for (const auto& j : r.jobs) {
    Append(out, "j%llu s=%.17g c=%.17g q=%.17g\n",
           static_cast<unsigned long long>(j.id), j.submit, j.completion,
           j.queuing_delay);
  }
  return out;
}

TEST(Federation, FingerprintIsIdenticalAcrossThreadBudgets) {
  const auto cl = MakeFleet(24);
  const auto t = MakeTrace(240, 24);
  runner::RunOptions ro;
  ro.scheduler = "phoenix";
  ro.config.seed = 19;
  // Chaos on: gossip digests ride the lossy fabric, so this also checks the
  // per-message RNG keeps the multi-shard stream thread-deterministic.
  ro.config.net.model = net::LatencyModel::kLognormal;
  ro.config.net.drop_rate = 0.03;
  ro.config.net.reorder_rate = 0.05;
  ro.federation.shards = 3;
  ro.federation.gossip_period = 2.0;
  ro.federation.staleness_bound = 10.0;
  std::vector<std::string> serial;
  {
    ScopedThreads threads(1);
    const runner::RepeatedRuns runs(t, cl, ro, 3);
    for (const auto& r : runs.reports()) serial.push_back(Fingerprint(r));
  }
  {
    ScopedThreads threads(4);
    const runner::RepeatedRuns runs(t, cl, ro, 3);
    ASSERT_EQ(runs.reports().size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(Fingerprint(runs.reports()[i]), serial[i]) << "run " << i;
    }
  }
}

}  // namespace
}  // namespace phoenix
