// Unit tests for the workload layer: trace container, generators,
// constraint synthesizer, serialization and characterization.
#include <sstream>

#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "trace/characterize.h"
#include "trace/generators.h"
#include "trace/io.h"
#include "trace/synthesizer.h"

namespace phoenix::trace {
namespace {

Trace SmallGoogle(std::uint64_t seed = 1) {
  return GenerateGoogleTrace(2000, 200, 0.8, seed);
}

// ---------------------------------------------------------------- Job

TEST(Job, WorkAndMeanDuration) {
  Job j;
  j.task_durations = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(j.total_work(), 6.0);
  EXPECT_DOUBLE_EQ(j.mean_task_duration(), 2.0);
  EXPECT_EQ(j.num_tasks(), 3u);
  EXPECT_FALSE(j.constrained());
}

// ---------------------------------------------------------------- Trace

TEST(Trace, InvariantsHoldForGenerated) {
  const Trace t = SmallGoogle();
  t.CheckInvariants();  // aborts on violation
  EXPECT_EQ(t.size(), 2000u);
}

TEST(TraceDeathTest, UnsortedJobsAbort) {
  Job a, b;
  a.id = 0;
  a.submit_time = 5;
  a.task_durations = {1};
  b.id = 1;
  b.submit_time = 2;
  b.task_durations = {1};
  EXPECT_DEATH(Trace("bad", {a, b}), "sorted");
}

TEST(TraceDeathTest, EmptyJobAborts) {
  Job a;
  a.id = 0;
  EXPECT_DEATH(Trace("bad", {a}), "zero tasks");
}

TEST(TraceDeathTest, NonPositiveDurationAborts) {
  Job a;
  a.id = 0;
  a.task_durations = {0.0};
  EXPECT_DEATH(Trace("bad", {a}), "positive");
}

TEST(Trace, StatsCountConsistency) {
  const Trace t = SmallGoogle();
  const TraceStats s = t.ComputeStats();
  EXPECT_EQ(s.num_jobs, t.size());
  std::size_t tasks = 0;
  for (const Job& j : t.jobs()) tasks += j.num_tasks();
  EXPECT_EQ(s.num_tasks, tasks);
  EXPECT_GT(s.total_work, 0.0);
  EXPECT_GT(s.horizon, 0.0);
  EXPECT_GT(s.peak_to_median_arrival, 1.0);
}

TEST(Trace, OfferedLoadScalesInverselyWithWorkers) {
  const Trace t = SmallGoogle();
  const double l200 = t.OfferedLoad(200);
  const double l400 = t.OfferedLoad(400);
  EXPECT_NEAR(l200 / l400, 2.0, 1e-9);
}

TEST(Trace, OfferedLoadNearTarget) {
  const Trace t = SmallGoogle();
  // Calibration targets 0.8 on 200 workers; sampling noise allowed.
  EXPECT_NEAR(t.OfferedLoad(200), 0.8, 0.25);
}

TEST(Trace, WithoutConstraintsStripsEverything) {
  const Trace t = SmallGoogle();
  const Trace bare = t.WithoutConstraints();
  EXPECT_EQ(bare.size(), t.size());
  for (const Job& j : bare.jobs()) EXPECT_FALSE(j.constrained());
  EXPECT_DOUBLE_EQ(bare.short_cutoff(), t.short_cutoff());
  // Everything else is untouched.
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(bare.job(i).task_durations, t.job(i).task_durations);
    EXPECT_DOUBLE_EQ(bare.job(i).submit_time, t.job(i).submit_time);
  }
}

TEST(Trace, ShortCutoffSplitsAtRequestedFraction) {
  const Trace t = SmallGoogle();
  std::size_t below = 0;
  for (const Job& j : t.jobs()) below += j.mean_task_duration() <= t.short_cutoff();
  const double frac = static_cast<double>(below) / t.size();
  EXPECT_NEAR(frac, 0.902, 0.03);
}

TEST(ComputeShortJobCutoff, EmptyAndTrivial) {
  EXPECT_DOUBLE_EQ(ComputeShortJobCutoff({}, 0.5), 0.0);
  Job j;
  j.id = 0;
  j.task_durations = {4.0};
  EXPECT_DOUBLE_EQ(ComputeShortJobCutoff({j}, 0.5), 4.0);
}

// ---------------------------------------------------------------- Generator

TEST(Generator, DeterministicForSeed) {
  const Trace a = SmallGoogle(9);
  const Trace b = SmallGoogle(9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.job(i).submit_time, b.job(i).submit_time);
    EXPECT_EQ(a.job(i).task_durations, b.job(i).task_durations);
    EXPECT_EQ(a.job(i).constraints, b.job(i).constraints);
  }
}

TEST(Generator, SeedsProduceDifferentTraces) {
  const Trace a = SmallGoogle(1);
  const Trace b = SmallGoogle(2);
  EXPECT_NE(a.job(0).submit_time, b.job(0).submit_time);
}

TEST(Generator, ShortFractionMatchesProfile) {
  for (const auto& [name, expected] :
       std::vector<std::pair<std::string, double>>{
           {"google", 0.902}, {"yahoo", 0.9156}, {"cloudera", 0.95}}) {
    auto o = ProfileByName(name);
    o.num_jobs = 4000;
    o.num_workers = 300;
    o.target_load = 0.8;
    o.seed = 3;
    const Trace t = GenerateTrace(name, o);
    EXPECT_NEAR(t.ComputeStats().short_job_fraction, expected, 0.02) << name;
  }
}

TEST(Generator, RoughlyHalfTheTasksAreConstrained) {
  const Trace t = SmallGoogle();
  const auto s = t.ComputeStats();
  EXPECT_NEAR(s.constrained_task_fraction, 0.5, 0.1);
}

TEST(Generator, TaskDurationsRespectShortBounds) {
  auto o = GoogleProfile();
  o.num_jobs = 1000;
  o.num_workers = 100;
  o.seed = 4;
  const Trace t = GenerateTrace("g", o);
  for (const Job& j : t.jobs()) {
    if (!j.short_job) continue;
    for (const double d : j.task_durations) {
      EXPECT_GE(d, o.short_lo);
      EXPECT_LE(d, o.short_hi);
    }
  }
}

TEST(Generator, BurstinessIsVisible) {
  const Trace t = SmallGoogle();
  EXPECT_GT(t.ComputeStats().peak_to_median_arrival, 3.0);
}

TEST(Generator, NoBurstsWhenDisabled) {
  auto o = GoogleProfile();
  o.num_jobs = 3000;
  o.num_workers = 200;
  o.burst_fraction = 0.0;
  o.seed = 5;
  const Trace t = GenerateTrace("flat", o);
  // Plain Poisson: peak:median of 200 buckets stays modest.
  EXPECT_LT(t.ComputeStats().peak_to_median_arrival, 4.0);
}

TEST(Generator, ExpectedWorkPerJobIsPositiveAndOrdered) {
  const auto g = GoogleProfile();
  const double w = ExpectedWorkPerJob(g);
  EXPECT_GT(w, 0.0);
  // Long-heavy mix dominates: raising the long share raises expected work.
  auto heavier = g;
  heavier.short_job_fraction = 0.5;
  EXPECT_GT(ExpectedWorkPerJob(heavier), w);
}

TEST(Generator, ProfileByNameRoundTrips) {
  EXPECT_EQ(ProfileByName("google").num_workers, 15000u);
  EXPECT_EQ(ProfileByName("yahoo").num_workers, 5000u);
  EXPECT_EQ(ProfileByName("cloudera").num_workers, 15000u);
}

TEST(GeneratorDeathTest, UnknownProfileAborts) {
  EXPECT_DEATH(ProfileByName("azure"), "unknown trace profile");
}

// ---------------------------------------------------------------- Synthesizer

TEST(Synthesizer, ConstrainedFractionIsRespected) {
  SynthesizerOptions o;
  o.constrained_fraction = 0.5;
  ConstraintSynthesizer synth(o, 7);
  int constrained = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) constrained += !synth.Synthesize().empty();
  EXPECT_NEAR(static_cast<double>(constrained) / n, 0.5, 0.02);
}

TEST(Synthesizer, ZeroFractionMeansNoConstraints) {
  SynthesizerOptions o;
  o.constrained_fraction = 0.0;
  ConstraintSynthesizer synth(o, 8);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(synth.Synthesize().empty());
}

TEST(Synthesizer, ConstraintCountWithinBounds) {
  ConstraintSynthesizer synth(SynthesizerOptions{}, 9);
  for (int i = 0; i < 5000; ++i) {
    const auto cs = synth.Synthesize();
    EXPECT_LE(cs.size(), cluster::kMaxConstraintsPerTask);
  }
}

TEST(Synthesizer, AttributesWithinSetAreDistinct) {
  ConstraintSynthesizer synth(SynthesizerOptions{}, 10);
  for (int i = 0; i < 2000; ++i) {
    const auto cs = synth.Synthesize();
    std::set<cluster::Attr> attrs;
    for (const auto& c : cs) attrs.insert(c.attr);
    EXPECT_EQ(attrs.size(), cs.size());
  }
}

TEST(Synthesizer, HardFractionIsRespected) {
  SynthesizerOptions o;
  o.constrained_fraction = 1.0;
  o.hard_fraction = 0.6;
  ConstraintSynthesizer synth(o, 11);
  int hard = 0, total = 0;
  for (int i = 0; i < 10000; ++i) {
    for (const auto& c : synth.Synthesize()) {
      hard += c.hard;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(hard) / total, 0.6, 0.02);
}

TEST(Synthesizer, IsaDominatesAttributeMix) {
  SynthesizerOptions o;
  o.constrained_fraction = 1.0;
  ConstraintSynthesizer synth(o, 12);
  std::array<int, cluster::kNumAttrs> counts{};
  for (int i = 0; i < 20000; ++i) {
    for (const auto& c : synth.Synthesize()) {
      ++counts[static_cast<std::size_t>(c.attr)];
    }
  }
  // Table II: ISA is by far the most requested attribute.
  const int isa = counts[static_cast<std::size_t>(cluster::Attr::kArch)];
  for (std::size_t a = 1; a < cluster::kNumAttrs; ++a) {
    EXPECT_GT(isa, counts[a]) << "attr " << a;
  }
}

TEST(Synthesizer, CategoricalAttrsUseEquality) {
  SynthesizerOptions o;
  o.constrained_fraction = 1.0;
  ConstraintSynthesizer synth(o, 13);
  for (int i = 0; i < 5000; ++i) {
    for (const auto& c : synth.Synthesize()) {
      if (c.attr == cluster::Attr::kArch ||
          c.attr == cluster::Attr::kPlatformFamily) {
        EXPECT_EQ(c.op, cluster::ConstraintOp::kEqual);
      }
    }
  }
}

TEST(Synthesizer, EveryConstraintIsIndividuallySatisfiable) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 3000, .seed = 21});
  SynthesizerOptions o;
  o.constrained_fraction = 1.0;
  o.demand_skew = 1.0;  // worst case: uniform over domains
  ConstraintSynthesizer synth(o, 14);
  for (int i = 0; i < 3000; ++i) {
    for (const auto& c : synth.Synthesize()) {
      EXPECT_GT(cl.Satisfying(c).Count(), 0u) << c.ToString();
    }
  }
}

// ---------------------------------------------------------------- IO

TEST(TraceIo, RoundTripsThroughText) {
  const Trace original = GenerateGoogleTrace(300, 100, 0.7, 15);
  std::stringstream buffer;
  WriteTrace(original, buffer);
  std::string error;
  const Trace parsed = ReadTrace(buffer, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_NEAR(parsed.short_cutoff(), original.short_cutoff(), 1e-4);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Job& a = original.job(i);
    const Job& b = parsed.job(i);
    EXPECT_NEAR(a.submit_time, b.submit_time, 1e-6);
    EXPECT_EQ(a.short_job, b.short_job);
    ASSERT_EQ(a.task_durations.size(), b.task_durations.size());
    for (std::size_t k = 0; k < a.task_durations.size(); ++k) {
      EXPECT_NEAR(a.task_durations[k], b.task_durations[k],
                  1e-6 * a.task_durations[k]);
    }
    EXPECT_EQ(a.constraints.size(), b.constraints.size());
    for (std::size_t k = 0; k < a.constraints.size(); ++k) {
      EXPECT_EQ(a.constraints[k], b.constraints[k]);
    }
  }
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream in("1.0|1|2.5\n");
  std::string error;
  ReadTrace(in, &error);
  EXPECT_NE(error.find("|-separated"), std::string::npos);
}

TEST(TraceIo, RejectsOutOfOrderJobs) {
  std::stringstream in("5.0|1|1.0|\n2.0|1|1.0|\n");
  std::string error;
  ReadTrace(in, &error);
  EXPECT_NE(error.find("order"), std::string::npos);
}

TEST(TraceIo, RejectsBadDuration) {
  std::stringstream in("1.0|1|-3|\n");
  std::string error;
  ReadTrace(in, &error);
  EXPECT_NE(error.find("duration"), std::string::npos);
}

TEST(TraceIo, RejectsBadConstraintSpec) {
  std::stringstream in("1.0|1|2.0|0:=:1\n");
  std::string error;
  ReadTrace(in, &error);
  EXPECT_NE(error.find("attr:op:value:hard"), std::string::npos);
}

TEST(TraceIo, RejectsBadOperator) {
  std::stringstream in("1.0|1|2.0|0:~:1:1\n");
  std::string error;
  ReadTrace(in, &error);
  EXPECT_NE(error.find("operator"), std::string::npos);
}

TEST(TraceIo, RejectsAttrOutOfRange) {
  std::stringstream in("1.0|1|2.0|99:=:1:1\n");
  std::string error;
  ReadTrace(in, &error);
  EXPECT_NE(error.find("attribute out of range"), std::string::npos);
}

TEST(TraceIo, MissingFileGivesError) {
  std::string error;
  ReadTraceFile("/nonexistent/path.trace", &error);
  EXPECT_FALSE(error.empty());
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream in("# a comment\n\n1.0|1|2.0|\n");
  std::string error;
  const Trace t = ReadTrace(in, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(t.size(), 1u);
}

// ---------------------------------------------------------------- Characterize

TEST(Characterize, SharesSumToHundred) {
  const Trace t = SmallGoogle();
  const ConstraintUsage usage = CharacterizeConstraints(t);
  double share_sum = 0, demand_sum = 0;
  for (const double s : usage.shares) share_sum += s;
  for (const double d : usage.demand_pct) demand_sum += d;
  EXPECT_NEAR(share_sum, 100.0, 1e-6);
  EXPECT_NEAR(demand_sum, 100.0, 1e-6);
  EXPECT_EQ(usage.constrained_jobs + usage.unconstrained_jobs, t.size());
}

TEST(Characterize, IsaLeadsShares) {
  const ConstraintUsage usage = CharacterizeConstraints(SmallGoogle());
  const double isa = usage.shares[static_cast<std::size_t>(cluster::Attr::kArch)];
  for (std::size_t a = 0; a < cluster::kNumAttrs; ++a) {
    if (a == static_cast<std::size_t>(cluster::Attr::kArch)) continue;
    EXPECT_GE(isa, usage.shares[a]);
  }
}

TEST(Characterize, DemandPeaksAtTwoConstraints) {
  const ConstraintUsage usage = CharacterizeConstraints(SmallGoogle());
  // Fig 6: the mode of the demand distribution is 2 constraints.
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < usage.demand_pct.size(); ++k) {
    if (usage.demand_pct[k] > usage.demand_pct[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 1u);  // index 1 => 2 constraints
}

TEST(Characterize, SupplyCurveDecreases) {
  const Trace t = SmallGoogle();
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 2000, .seed = 33});
  const auto supply = SupplyCurve(t, cl);
  // Monotone non-increasing over the populated prefix (Fig 6 shape).
  for (std::size_t k = 1; k < supply.size(); ++k) {
    if (supply[k] == 0) continue;  // no jobs with that many constraints
    EXPECT_LE(supply[k], supply[k - 1] * 1.25) << "k=" << k + 1;
  }
  EXPECT_GT(supply[0], supply[5]);
}

// The supply curve is a pure function of (trace, cluster): alternating
// calls against clusters of different composition must not leak cached
// state from one cluster into the other's answer (the eligibility caches
// involved are per-cluster).
TEST(Characterize, SupplyCurveTracksClusterComposition) {
  const Trace t = SmallGoogle();
  const cluster::Cluster small =
      cluster::BuildCluster({.num_machines = 120, .seed = 5});
  const cluster::Cluster large =
      cluster::BuildCluster({.num_machines = 2400, .seed = 91});
  const auto supply_small_1 = SupplyCurve(t, small);
  const auto supply_large_1 = SupplyCurve(t, large);
  const auto supply_small_2 = SupplyCurve(t, small);
  const auto supply_large_2 = SupplyCurve(t, large);
  EXPECT_EQ(supply_small_1, supply_small_2);
  EXPECT_EQ(supply_large_1, supply_large_2);
  // The two compositions genuinely differ somewhere on the curve —
  // otherwise equality above proves nothing about cross-talk.
  EXPECT_NE(supply_small_1, supply_large_1);
}

// CharacterizeConstraints is cluster-independent; interleaving it with
// supply computations over changing clusters must not perturb it.
TEST(Characterize, UsageStableAcrossClusterChanges) {
  const Trace t = SmallGoogle();
  const ConstraintUsage before = CharacterizeConstraints(t);
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const cluster::Cluster cl =
        cluster::BuildCluster({.num_machines = 300 * seed, .seed = seed});
    (void)SupplyCurve(t, cl);
    const ConstraintUsage after = CharacterizeConstraints(t);
    EXPECT_EQ(after.total_occurrences, before.total_occurrences);
    EXPECT_EQ(after.constrained_jobs, before.constrained_jobs);
    EXPECT_EQ(after.occurrences, before.occurrences);
  }
}

// A one-machine cluster degenerates the supply curve to {0, 100}% steps;
// exercised because the elastic base fleet can be arbitrarily small.
TEST(Characterize, SupplyCurveOnTinyCluster) {
  const Trace t = SmallGoogle();
  const cluster::Cluster one =
      cluster::BuildCluster({.num_machines = 1, .seed = 3});
  const auto supply = SupplyCurve(t, one);
  for (const double s : supply) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 100.0);
  }
}

}  // namespace
}  // namespace phoenix::trace
