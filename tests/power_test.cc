// Energy/power subsystem tests: the machine power model invariants, the
// EnergyMeter dwell integral, park/wake lifecycle transitions under
// scheduler control (veto while holding work, double-park idempotency,
// wake during drain), the auditor's power rules (transition legality,
// energy conservation), and end-to-end powered runs (audit-clean, energy
// actually saved, dispatch-time demand wakes, bit-identical across thread
// budgets, meter-only runs identical to unpowered ones). Registered under
// the "power" ctest label (scripts/check.sh runs `ctest -L power`).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/builder.h"
#include "cluster/membership.h"
#include "obs/audit.h"
#include "power/config.h"
#include "power/manager.h"
#include "power/meter.h"
#include "power/model.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "runner/registry.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

using cluster::MachineLifecycle;

cluster::Cluster MakeUniverse(std::size_t n, std::uint64_t seed = 7) {
  return cluster::BuildCluster({.num_machines = n, .seed = seed});
}

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

power::PowerConfig PowerOn(bool park, bool dvfs) {
  power::PowerConfig pc;
  pc.enabled = true;
  pc.policy.park = park;
  pc.policy.dvfs = dvfs;
  return pc;
}

// ---- Power model invariants ------------------------------------------------

TEST(PowerModel, CatalogOrderingInvariants) {
  for (const power::MachineClass& c : power::ClassCatalog()) {
    EXPECT_GT(c.sleep_watts, 0.0) << c.name;
    EXPECT_GT(c.wake_latency, 0.0) << c.name;
    for (unsigned p = 0; p < power::kNumPStates; ++p) {
      // Watts strictly ordered exec > idle > sleep at every P-state.
      EXPECT_GT(c.exec_watts[p], c.idle_watts[p]) << c.name << " p" << p;
      EXPECT_GT(c.idle_watts[p], c.sleep_watts) << c.name << " p" << p;
      if (p > 0) {
        // Deeper P-states are strictly slower and strictly cheaper.
        EXPECT_LT(c.exec_watts[p], c.exec_watts[p - 1]) << c.name;
        EXPECT_LT(c.idle_watts[p], c.idle_watts[p - 1]) << c.name;
        EXPECT_LT(c.mips[p], c.mips[p - 1]) << c.name;
      }
    }
  }
}

TEST(PowerModel, PerMachineQueriesAreConsistent) {
  const auto cl = MakeUniverse(32, 11);
  const power::PowerModel model(cl);
  ASSERT_EQ(model.size(), cl.size());
  for (cluster::MachineId id = 0; id < cl.size(); ++id) {
    EXPECT_EQ(model.SpeedScale(id, 0), 1.0);
    for (unsigned p = 1; p < power::kNumPStates; ++p) {
      EXPECT_GT(model.SpeedScale(id, p), model.SpeedScale(id, p - 1));
    }
    EXPECT_EQ(model.ExecWatts(id, 0), model.cls(id).exec_watts[0]);
  }
  // The class map is a pure function of immutable attributes: the same
  // cluster always produces the same classes.
  const power::PowerModel again(cl);
  for (cluster::MachineId id = 0; id < cl.size(); ++id) {
    EXPECT_EQ(model.class_of(id), again.class_of(id));
  }
}

// ---- EnergyMeter dwell integral -------------------------------------------

TEST(EnergyMeter, IntegratesDwellsExactly) {
  power::EnergyMeter meter;
  meter.Init(0.0, {100.0, 10.0});
  meter.SetWatts(0, 10.0, 50.0);   // 100 W for 10 s = 1000 J
  meter.SetWatts(0, 30.0, 200.0);  // 50 W for 20 s = 1000 J
  // Channel 1 never transitions: 10 W for the whole horizon.
  EXPECT_DOUBLE_EQ(meter.MachineJoules(0, 40.0), 1000 + 1000 + 200.0 * 10);
  EXPECT_DOUBLE_EQ(meter.MachineJoules(1, 40.0), 400.0);
  EXPECT_DOUBLE_EQ(meter.TotalJoules(40.0), 4400.0);
}

TEST(EnergyMeter, ReadsAreConstAndRepeatable) {
  power::EnergyMeter meter;
  meter.Init(5.0, {42.0});
  meter.SetWatts(0, 15.0, 7.0);
  const double first = meter.TotalJoules(100.0);
  // A read closes dwells at the horizon without mutating the channel.
  EXPECT_DOUBLE_EQ(meter.TotalJoules(100.0), first);
  EXPECT_DOUBLE_EQ(meter.watts(0), 7.0);
  // A later transition still accrues from the real last change, not the
  // previously read horizon.
  meter.SetWatts(0, 25.0, 0.0);
  EXPECT_DOUBLE_EQ(meter.TotalJoules(25.0), 42.0 * 10 + 7.0 * 10);
}

// ---- Park/wake transitions under scheduler control ------------------------

/// A scheduler wired the way RunSimulation wires a powered run, with the
/// engine exposed so tests can inject decisions at chosen instants. Owns a
/// copy of the trace: the scheduler holds pointers into it for the whole
/// run.
struct PoweredHarness {
  PoweredHarness(const cluster::Cluster& cl, trace::Trace t,
                 const power::PowerConfig& pc)
      : trace(std::move(t)), view(cl, cl.size()), manager(cl, pc) {
    sched::SchedulerConfig sc;
    sc.seed = 7;
    scheduler = runner::MakeScheduler("phoenix", engine, cl, sc);
    scheduler->SetMembership(&view);
    scheduler->SetPower(&manager);
    scheduler->SubmitTrace(trace);
  }

  metrics::SimReport Finish() {
    engine.Run();
    scheduler->FinalAudit();
    return scheduler->BuildReport();
  }

  trace::Trace trace;
  sim::Engine engine;
  cluster::MembershipView view;
  power::PowerManager manager;
  std::unique_ptr<sched::SchedulerBase> scheduler;
};

trace::Trace OneTaskTrace(double submit, double duration) {
  trace::Job j;
  j.id = 0;
  j.submit_time = submit;
  j.task_durations = {duration};
  j.short_job = true;
  trace::Trace t("test", {j});
  t.set_short_cutoff(100.0);
  return t;
}

TEST(ParkTransitions, ParkWakeRoundTripAndDoubleParkIsIdempotent) {
  const auto cl = MakeUniverse(4, 3);
  PoweredHarness h(cl, OneTaskTrace(0.0, 5.0), PowerOn(false, false));
  h.engine.ScheduleAfter(50.0, [&] {
    EXPECT_TRUE(h.scheduler->ParkMachine(3));
    EXPECT_EQ(h.view.state(3), MachineLifecycle::kParked);
    EXPECT_TRUE(h.manager.asleep(3));
    // Double park: idempotent no-op, not a crash and not a second event.
    EXPECT_FALSE(h.scheduler->ParkMachine(3));
  });
  h.engine.ScheduleAfter(60.0, [&] {
    h.scheduler->WakeParkedMachine(3);
    EXPECT_EQ(h.view.state(3), MachineLifecycle::kProvisioning);
    EXPECT_FALSE(h.view.Bindable(3));
  });
  h.engine.ScheduleAfter(60.0 + h.manager.WakeLatency(3) + 1.0, [&] {
    EXPECT_EQ(h.view.state(3), MachineLifecycle::kActive);
    EXPECT_FALSE(h.manager.asleep(3));
    EXPECT_EQ(h.manager.p_state(3), 0u);  // wakes land at full clock
  });
  const auto report = h.Finish();
  EXPECT_EQ(report.counters.power_parks, 1u);
  EXPECT_EQ(report.counters.power_wakes, 1u);
  EXPECT_GT(report.sleep_machine_seconds, 0.0);
}

TEST(ParkTransitions, ParkIsVetoedWhileMachineHoldsWork) {
  const auto cl = MakeUniverse(1, 3);
  PoweredHarness h(cl, OneTaskTrace(0.0, 50.0), PowerOn(false, false));
  h.engine.ScheduleAfter(10.0, [&] {
    // The single machine is mid-execution: parking would strand the task.
    EXPECT_TRUE(h.scheduler->worker_state(0).busy);
    EXPECT_FALSE(h.scheduler->ParkMachine(0));
    EXPECT_EQ(h.view.state(0), MachineLifecycle::kActive);
  });
  const auto report = h.Finish();
  EXPECT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.counters.power_parks, 0u);
}

TEST(ParkTransitions, ViewAllowsParkFromDrainingAndWakeAfterwards) {
  // The elastic return edge: a draining machine may fall into S3 instead of
  // retiring, and later rejoin through the normal provisioning path.
  const auto cl = MakeUniverse(8, 3);
  cluster::MembershipView view(cl, 4);
  view.SetState(5, MachineLifecycle::kProvisioning);
  view.SetState(5, MachineLifecycle::kActive);
  view.SetState(5, MachineLifecycle::kDraining);
  view.SetState(5, MachineLifecycle::kParked);
  // Machines 4..7 started parked (8 - 4 guaranteed), 5 left and came back.
  EXPECT_EQ(view.parked_count(), 4u);
  view.SetState(5, MachineLifecycle::kProvisioning);
  view.SetState(5, MachineLifecycle::kActive);
  EXPECT_TRUE(view.Bindable(5));
  EXPECT_EQ(view.parked_count(), 3u);
}

TEST(ParkTransitions, ParkedSatisfierCountTracksTransitions) {
  const auto cl = MakeUniverse(16, 9);
  cluster::MembershipView view(cl, 16);
  const cluster::Constraint c{cluster::Attr::kNumCores,
                              cluster::ConstraintOp::kGreater, 1, true};
  EXPECT_EQ(view.CountParkedSatisfying(c), 0u);
  std::size_t parked_satisfying = 0;
  for (cluster::MachineId id = 0; id < 8; ++id) {
    view.SetState(id, MachineLifecycle::kParked);
    if (cl.machine(id).Satisfies(c)) ++parked_satisfying;
  }
  EXPECT_EQ(view.CountParkedSatisfying(c), parked_satisfying);
  view.SetState(0, MachineLifecycle::kProvisioning);
  if (cl.machine(0).Satisfies(c)) --parked_satisfying;
  EXPECT_EQ(view.CountParkedSatisfying(c), parked_satisfying);
}

// ---- Dispatch-time demand wake --------------------------------------------

TEST(DemandWake, FullyParkedFleetStillServesArrivals) {
  // Park the whole fleet, then let a job arrive: placement must wake a
  // satisfying machine (deliveries bounce until the S3 exit commissions it)
  // instead of aborting on an empty probe pool.
  const auto cl = MakeUniverse(4, 3);
  PoweredHarness h(cl, OneTaskTrace(100.0, 5.0), PowerOn(false, false));
  h.engine.ScheduleAfter(50.0, [&] {
    for (cluster::MachineId id = 0; id < 4; ++id) {
      EXPECT_TRUE(h.scheduler->ParkMachine(id));
    }
    EXPECT_EQ(h.view.bindable_count(), 0u);
  });
  const auto report = h.Finish();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_GE(report.counters.power_demand_wakes, 1u);
  EXPECT_GE(report.counters.power_wakes, 1u);
  // The job pays at least the S3 exit of some machine before starting.
  double min_wake = h.manager.WakeLatency(0);
  for (cluster::MachineId id = 1; id < 4; ++id) {
    min_wake = std::min(min_wake, h.manager.WakeLatency(id));
  }
  EXPECT_GE(report.jobs[0].completion, 100.0 + min_wake + 5.0);
}

// ---- Auditor power rules ---------------------------------------------------

obs::Event PowerEvent(double time, obs::EventType type, std::uint32_t machine,
                      double value = 0) {
  obs::Event e;
  e.time = time;
  e.type = type;
  e.machine = machine;
  e.value = value;
  return e;
}

TEST(AuditorPower, EnergyConservationHolds) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PowerEvent(0, obs::EventType::kPowerState, 0, 100.0));
  audit.OnEvent(PowerEvent(10, obs::EventType::kPowerState, 0, 50.0));
  audit.OnEvent(PowerEvent(0, obs::EventType::kPowerState, 1, 10.0));
  // 100 W x 10 s + 50 W x 10 s + 10 W x 20 s, closed at horizon 20.
  audit.ExpectEnergy(1700.0, 20.0);
  audit.Finish();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
  EXPECT_EQ(audit.power_events_seen(), 3u);
}

TEST(AuditorPower, EnergyConservationViolationIsCaught) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PowerEvent(0, obs::EventType::kPowerState, 0, 100.0));
  // The scheduler claims joules the event stream cannot account for — a
  // missed transition somewhere.
  audit.ExpectEnergy(9999.0, 10.0);
  audit.Finish();
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorPower, NegativeDrawIsViolation) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PowerEvent(0, obs::EventType::kPowerState, 0, -5.0));
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorPower, DvfsOnParkedMachineIsViolation) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PowerEvent(0, obs::EventType::kMachinePark, 2));
  audit.OnEvent(PowerEvent(1, obs::EventType::kPowerDvfs, 2, 60.0));
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorPower, WakeOfActiveMachineIsViolation) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PowerEvent(0, obs::EventType::kPowerWake, 2, 10.0));
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorPower, LegalParkWakeSequenceIsClean) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PowerEvent(0, obs::EventType::kPowerPark, 4));
  audit.OnEvent(PowerEvent(0, obs::EventType::kMachinePark, 4));
  audit.OnEvent(PowerEvent(30, obs::EventType::kPowerWake, 4, 10.0));
  audit.OnEvent(PowerEvent(30, obs::EventType::kMachineProvision, 4, 10.0));
  audit.OnEvent(PowerEvent(40, obs::EventType::kMachineCommission, 4));
  audit.OnEvent(PowerEvent(50, obs::EventType::kPowerDvfs, 4, 50.0));
  audit.Finish();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
}

// ---- End-to-end powered runs ----------------------------------------------

TEST(PoweredRun, AuditCleanWithParksAndEnergyAccounting) {
  const auto cl = MakeUniverse(32, 23);
  const auto t = trace::GenerateGoogleTrace(300, 32, 0.35, 23);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.power = PowerOn(true, true);
  o.obs.audit = true;  // the runner aborts on any auditor violation
  const runner::RepeatedRuns runs(t, cl, o, 2);
  for (const auto& r : runs.reports()) {
    EXPECT_EQ(r.jobs.size(), t.size());
    EXPECT_TRUE(r.power_enabled);
    EXPECT_GT(r.total_joules, 0.0);
    EXPECT_GT(r.energy_per_task, 0.0);
    EXPECT_GT(r.energy_delay_product, 0.0);
    EXPECT_GT(r.counters.power_parks, 0u);
    EXPECT_GT(r.sleep_machine_seconds, 0.0);
  }
}

TEST(PoweredRun, DeepParkSavesEnergy) {
  const auto cl = MakeUniverse(32, 29);
  const auto t = trace::GenerateGoogleTrace(300, 32, 0.35, 29);
  runner::RunOptions meter;
  meter.scheduler = "phoenix";
  meter.power = PowerOn(false, false);
  runner::RunOptions park = meter;
  park.power = PowerOn(true, false);
  const auto r_meter = runner::RunSimulation(t, cl, meter);
  const auto r_park = runner::RunSimulation(t, cl, park);
  EXPECT_EQ(r_meter.counters.power_parks, 0u);
  EXPECT_GT(r_park.counters.power_parks, 0u);
  EXPECT_LT(r_park.total_joules, r_meter.total_joules);
}

TEST(PoweredRun, MeterOnlyRunMatchesUnpoweredSchedule) {
  // Metering alone must not move a single scheduling decision: the power
  // plane only observes until a park or DVFS policy actuates.
  const auto cl = MakeUniverse(24, 31);
  const auto t = trace::GenerateGoogleTrace(300, 24, 0.8, 31);
  runner::RunOptions off;
  off.scheduler = "phoenix";
  runner::RunOptions meter = off;
  meter.power = PowerOn(false, false);
  const auto r_off = runner::RunSimulation(t, cl, off);
  const auto r_meter = runner::RunSimulation(t, cl, meter);
  EXPECT_EQ(r_off.makespan, r_meter.makespan);
  EXPECT_EQ(r_off.counters.probes_sent, r_meter.counters.probes_sent);
  EXPECT_EQ(r_off.Utilization(), r_meter.Utilization());
  const auto p_off = r_off.QueuingSummary(metrics::ClassFilter::kShort,
                                          metrics::ConstraintFilter::kAll);
  const auto p_meter = r_meter.QueuingSummary(metrics::ClassFilter::kShort,
                                              metrics::ConstraintFilter::kAll);
  EXPECT_EQ(p_off.p99, p_meter.p99);
  EXPECT_FALSE(r_off.power_enabled);
  EXPECT_EQ(r_off.total_joules, 0.0);
  EXPECT_TRUE(r_meter.power_enabled);
  EXPECT_GT(r_meter.total_joules, 0.0);
}

TEST(PoweredRun, BitIdenticalAcrossThreadCounts) {
  const auto cl = MakeUniverse(32, 37);
  const auto t = trace::GenerateGoogleTrace(300, 32, 0.35, 37);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.power = PowerOn(true, true);
  auto summarize = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    const runner::RepeatedRuns runs(t, cl, o, 3);
    std::vector<double> values;
    for (const auto& r : runs.reports()) {
      values.push_back(r.makespan);
      values.push_back(r.total_joules);
      values.push_back(r.sleep_machine_seconds);
      values.push_back(static_cast<double>(r.counters.power_parks));
      values.push_back(static_cast<double>(r.counters.power_wakes));
      values.push_back(static_cast<double>(r.counters.power_dvfs_raises));
      values.push_back(r.QueuingSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll)
                           .p99);
    }
    return values;
  };
  const auto serial = summarize(1);
  const auto parallel = summarize(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "summary value " << i;
  }
}

TEST(PoweredRun, ElasticDrainsParkInsteadOfRetiring) {
  // With a power plane attached, the elastic controller's scale-down retire
  // edge lands in S3 (the lease can come back cheaply) instead of leaving
  // the fleet. Bursty load drives scale-up in the swells and scale-down in
  // the troughs; no reclamation, so every drain is a scale-down decision.
  const auto cl = MakeUniverse(48, 33);
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 500;
  gen.num_workers = 24;
  gen.target_load = 0.4;
  gen.seed = 33;
  gen.burst_factor = 3.0;
  gen.burst_fraction = 0.4;
  gen.burst_duration_mean = 300.0;
  const auto t = trace::GenerateTrace("bursty", gen);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.elastic.enabled = true;
  o.elastic.base_machines = 24;
  o.elastic.reserve_machines = 24;
  o.elastic.warmup_delay = 10.0;
  o.elastic.drain_grace = 30.0;
  // The clamped straggler estimates keep the elastic mean in the tens of
  // thousands of seconds through the bursts; it only settles near ~100 s in
  // the drain tail. Bracket that: scale up through the run, scale down in
  // the tail, and every drained machine must fall into S3 rather than
  // retiring. Power policy stays meter-only so the power controller's own
  // park pass cannot race the elastic drains — the retire edge parks
  // whenever a manager is attached.
  o.elastic.target_wait = 200.0;
  o.elastic.scale_down_factor = 0.9;
  o.power = PowerOn(false, false);
  o.obs.audit = true;
  const runner::RepeatedRuns runs(t, cl, o, 1);
  const auto& r = runs.reports()[0];
  EXPECT_EQ(r.jobs.size(), t.size());
  EXPECT_GT(r.counters.elastic_drains, 0u);
  EXPECT_GT(r.counters.power_parks_instead_of_retire, 0u);
}

}  // namespace
}  // namespace phoenix
