// Elastic cluster lifecycle tests: the MembershipView state machine and
// eligibility caches, the determinism contract (an all-active view is
// RNG-identical to the membership-free path, elastic runs are bit-identical
// across thread budgets), the elasticity controller's three policies, and
// the auditor's lifecycle rules. Registered under the "elastic" ctest label
// (scripts/check.sh runs `ctest -L elastic` as a stage).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/builder.h"
#include "cluster/membership.h"
#include "obs/audit.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace phoenix {
namespace {

using cluster::MachineLifecycle;

cluster::Cluster MakeUniverse(std::size_t n, std::uint64_t seed = 7) {
  return cluster::BuildCluster({.num_machines = n, .seed = seed});
}

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

// ---- MembershipView state machine ----------------------------------------

TEST(MembershipView, InitialPartition) {
  const auto cl = MakeUniverse(20);
  const cluster::MembershipView view(cl, 12);
  EXPECT_EQ(view.size(), 20u);
  EXPECT_EQ(view.guaranteed_active(), 12u);
  EXPECT_EQ(view.bindable_count(), 12u);
  EXPECT_EQ(view.in_service_count(), 12u);
  for (cluster::MachineId id = 0; id < 12; ++id) {
    EXPECT_EQ(view.state(id), MachineLifecycle::kActive);
    EXPECT_TRUE(view.Bindable(id));
    EXPECT_TRUE(view.InService(id));
  }
  for (cluster::MachineId id = 12; id < 20; ++id) {
    EXPECT_EQ(view.state(id), MachineLifecycle::kParked);
    EXPECT_FALSE(view.Bindable(id));
    EXPECT_FALSE(view.InService(id));
  }
}

TEST(MembershipView, FullLifecycleRoundTrip) {
  const auto cl = MakeUniverse(8);
  cluster::MembershipView view(cl, 4);
  const std::uint64_t epoch0 = view.epoch();

  view.SetState(5, MachineLifecycle::kProvisioning);
  EXPECT_FALSE(view.Bindable(5));
  EXPECT_FALSE(view.InService(5));
  view.SetState(5, MachineLifecycle::kActive);
  EXPECT_TRUE(view.Bindable(5));
  EXPECT_EQ(view.bindable_count(), 5u);
  view.SetState(5, MachineLifecycle::kDraining);
  EXPECT_FALSE(view.Bindable(5));
  EXPECT_TRUE(view.InService(5));  // draining still holds capacity
  EXPECT_EQ(view.bindable_count(), 4u);
  EXPECT_EQ(view.in_service_count(), 5u);
  view.SetState(5, MachineLifecycle::kRetired);
  EXPECT_FALSE(view.InService(5));
  EXPECT_EQ(view.in_service_count(), 4u);
  // A retired lease can be re-opened.
  view.SetState(5, MachineLifecycle::kProvisioning);
  EXPECT_EQ(view.state(5), MachineLifecycle::kProvisioning);
  EXPECT_EQ(view.epoch(), epoch0 + 5);
}

TEST(MembershipViewDeathTest, IllegalTransitionsAbort) {
  const auto cl = MakeUniverse(8);
  cluster::MembershipView view(cl, 4);
  // parked -> active skips provisioning.
  EXPECT_DEATH(view.SetState(6, MachineLifecycle::kActive), "");
  // parked -> draining is meaningless.
  EXPECT_DEATH(view.SetState(6, MachineLifecycle::kDraining), "");
  // Only an active or draining machine can park (the power return edge);
  // a provisioning or retired one cannot.
  view.SetState(7, MachineLifecycle::kProvisioning);
  EXPECT_DEATH(view.SetState(7, MachineLifecycle::kParked), "");
  view.SetState(7, MachineLifecycle::kActive);
  view.SetState(7, MachineLifecycle::kDraining);
  view.SetState(7, MachineLifecycle::kRetired);
  EXPECT_DEATH(view.SetState(7, MachineLifecycle::kParked), "");
  // The guaranteed base fleet can never drain.
  EXPECT_DEATH(view.SetState(0, MachineLifecycle::kDraining), "");
}

// ---- Eligibility pools under membership ----------------------------------

TEST(MembershipView, PoolsTrackMembershipChanges) {
  const auto cl = MakeUniverse(30);
  cluster::MembershipView view(cl, 15);
  const cluster::ConstraintSet unconstrained;
  EXPECT_EQ(view.CountEligible(unconstrained), 15u);

  // Commission five more machines; the pool grows to match.
  for (cluster::MachineId id = 15; id < 20; ++id) {
    view.SetState(id, MachineLifecycle::kProvisioning);
    // Provisioning is not yet bindable: only the machines committed so far.
    EXPECT_EQ(view.CountEligible(unconstrained), static_cast<std::size_t>(id));
    view.SetState(id, MachineLifecycle::kActive);
  }
  EXPECT_EQ(view.CountEligible(unconstrained), 20u);

  // Drain one: it leaves every eligible pool immediately.
  view.SetState(17, MachineLifecycle::kDraining);
  EXPECT_EQ(view.CountEligible(unconstrained), 19u);
  EXPECT_FALSE(view.EligiblePool(unconstrained).Test(17));

  // A constrained pool is always a subset of the cluster's satisfying pool
  // and of the bindable set.
  cluster::ConstraintSet cs;
  cs.Add({cluster::Attr::kNumCores, cluster::ConstraintOp::kGreater, 1, true});
  const auto& pool = view.EligiblePool(cs);
  for (cluster::MachineId id = 0; id < view.size(); ++id) {
    if (pool.Test(id)) {
      EXPECT_TRUE(view.Bindable(id));
      EXPECT_TRUE(cl.Satisfying(cs).Test(id));
    }
  }
  EXPECT_EQ(view.CountEligible(cs[0]), pool.Count());
}

TEST(MembershipView, AdmissibleCountIgnoresChurn) {
  const auto cl = MakeUniverse(24);
  cluster::MembershipView view(cl, 12);
  cluster::ConstraintSet cs;
  cs.Add({cluster::Attr::kNumCores, cluster::ConstraintOp::kGreater, 1, true});
  const std::size_t admissible = view.CountAdmissible(cs);
  const std::size_t admissible_pred = view.CountAdmissible(cs[0]);
  // Scale the reserve up and down; the admissible count (base fleet only)
  // must not move — that is what makes admission decisions churn-proof.
  for (cluster::MachineId id = 12; id < 18; ++id) {
    view.SetState(id, MachineLifecycle::kProvisioning);
    view.SetState(id, MachineLifecycle::kActive);
  }
  EXPECT_EQ(view.CountAdmissible(cs), admissible);
  for (cluster::MachineId id = 12; id < 18; ++id) {
    view.SetState(id, MachineLifecycle::kDraining);
    view.SetState(id, MachineLifecycle::kRetired);
  }
  EXPECT_EQ(view.CountAdmissible(cs), admissible);
  EXPECT_EQ(view.CountAdmissible(cs[0]), admissible_pred);
}

// ---- Determinism contract -------------------------------------------------

// An all-active view must consume the identical RNG stream as the
// membership-free cluster samplers: same draws, same results, call by call.
TEST(MembershipView, AllActiveSamplingMatchesClusterBitForBit) {
  const auto cl = MakeUniverse(64, 11);
  const cluster::MembershipView view(cl, 64);
  std::vector<cluster::ConstraintSet> sets(2);
  sets[1].Add(
      {cluster::Attr::kNumCores, cluster::ConstraintOp::kGreater, 1, true});
  for (const auto& cs : sets) {
    util::Rng a(123), b(123);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(cl.SampleSatisfying(cs, a), view.SampleEligible(cs, b));
    }
    EXPECT_EQ(cl.SampleSatisfying(cs, 5, a), view.SampleEligible(cs, 5, b));
    EXPECT_EQ(cl.SampleDistinctSatisfying(cs, 7, a),
              view.SampleDistinctEligible(cs, 7, b));
    // The streams stayed in lockstep: the next raw draw agrees.
    EXPECT_EQ(a.Next(), b.Next());
  }
}

// Enabling the elastic machinery with empty reserve/transient pools (the
// whole universe is the guaranteed base fleet) must not change a single
// reported number relative to the static-fleet path.
TEST(ElasticRun, DegenerateElasticRunMatchesStaticRun) {
  const auto cl = MakeUniverse(40, 21);
  const auto t = trace::GenerateGoogleTrace(400, 40, 0.8, 21);
  runner::RunOptions stat;
  stat.scheduler = "phoenix";
  runner::RunOptions ela = stat;
  ela.elastic.enabled = true;
  ela.elastic.base_machines = 40;

  const runner::RepeatedRuns a(t, cl, stat, 2);
  const runner::RepeatedRuns b(t, cl, ela, 2);
  ASSERT_EQ(a.reports().size(), b.reports().size());
  for (std::size_t i = 0; i < a.reports().size(); ++i) {
    const auto& ra = a.reports()[i];
    const auto& rb = b.reports()[i];
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_EQ(ra.counters.probes_sent, rb.counters.probes_sent);
    EXPECT_EQ(ra.counters.tasks_stolen, rb.counters.tasks_stolen);
    EXPECT_EQ(ra.counters.tasks_reordered_crv, rb.counters.tasks_reordered_crv);
    EXPECT_EQ(ra.Utilization(), rb.Utilization());
    const auto pa = ra.QueuingSummary(metrics::ClassFilter::kShort,
                                      metrics::ConstraintFilter::kAll);
    const auto pb = rb.QueuingSummary(metrics::ClassFilter::kShort,
                                      metrics::ConstraintFilter::kAll);
    EXPECT_EQ(pa.p99, pb.p99);
    EXPECT_EQ(rb.counters.elastic_provisions, 0u);
    EXPECT_EQ(rb.counters.elastic_drains, 0u);
  }
}

runner::RunOptions ChurnOptions(const char* scheduler) {
  runner::RunOptions o;
  o.scheduler = scheduler;
  o.elastic.enabled = true;
  o.elastic.base_machines = 32;
  o.elastic.reserve_machines = 16;
  o.elastic.transient_machines = 12;
  o.elastic.transient_target = 12;
  o.elastic.warmup_delay = 20.0;
  o.elastic.drain_grace = 30.0;
  o.elastic.reclaim_rate = 1.0 / 200.0;  // mean lease lifetime ~3.3 min
  o.elastic.reclaim_grace = 10.0;
  return o;
}

// The acceptance run: reclamation-heavy churn under the full invariant
// auditor (the runner aborts on any violation — lost jobs, bindings to
// non-active machines, capacity leaks), with every job completing.
TEST(ElasticRun, ReclamationHeavyChurnIsAuditCleanAndLosesNoJobs) {
  const auto cl = MakeUniverse(60, 33);
  const auto t = trace::GenerateGoogleTrace(500, 32, 0.85, 33);
  auto o = ChurnOptions("phoenix");
  o.obs.audit = true;
  const runner::RepeatedRuns runs(t, cl, o, 2);
  for (const auto& r : runs.reports()) {
    EXPECT_EQ(r.jobs.size(), t.size());  // zero lost jobs
    EXPECT_GT(r.counters.elastic_reclamations, 0u);
    EXPECT_GT(r.counters.elastic_drains, 0u);
    EXPECT_EQ(r.counters.elastic_retires_graceful +
                  r.counters.elastic_retires_forced,
              r.counters.elastic_drains);
    EXPECT_GT(r.active_machine_seconds, 0.0);
  }
}

TEST(ElasticRun, ChurnIsBitIdenticalAcrossThreadCounts) {
  const auto cl = MakeUniverse(60, 29);
  const auto t = trace::GenerateGoogleTrace(400, 32, 0.85, 29);
  const auto o = ChurnOptions("phoenix");

  auto summarize = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    const runner::RepeatedRuns runs(t, cl, o, 3);
    std::vector<double> values;
    for (const auto& r : runs.reports()) {
      values.push_back(r.makespan);
      values.push_back(r.active_machine_seconds);
      values.push_back(static_cast<double>(r.counters.probes_sent));
      values.push_back(static_cast<double>(r.counters.elastic_reclamations));
      values.push_back(
          static_cast<double>(r.counters.elastic_tasks_redispatched));
      values.push_back(r.QueuingSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll)
                           .p99);
    }
    return values;
  };
  const auto serial = summarize(1);
  const auto parallel = summarize(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "summary value " << i;
  }
}

// Different seeds must see different reclamation streams (the per-seed RNG
// is mixed from run seed and elastic seed).
TEST(ElasticRun, ReclamationStreamIsPerSeed) {
  const auto cl = MakeUniverse(60, 17);
  const auto t = trace::GenerateGoogleTrace(400, 32, 0.85, 17);
  const auto o = ChurnOptions("phoenix");
  const runner::RepeatedRuns runs(t, cl, o, 3);
  const auto& rs = runs.reports();
  bool any_difference = false;
  for (std::size_t i = 1; i < rs.size(); ++i) {
    if (rs[i].counters.elastic_reclamations !=
            rs[0].counters.elastic_reclamations ||
        rs[i].makespan != rs[0].makespan) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// Reactive policy: an overloaded base fleet with a big reserve pool must
// scale up (provision + commission reserve machines).
TEST(ElasticRun, ReactivePolicyScalesUpUnderOverload) {
  const auto cl = MakeUniverse(48, 19);
  const auto t = trace::GenerateGoogleTrace(600, 24, 1.1, 19);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.elastic.enabled = true;
  o.elastic.base_machines = 24;
  o.elastic.reserve_machines = 24;
  o.elastic.warmup_delay = 10.0;
  o.elastic.target_wait = 1.0;
  const runner::RepeatedRuns runs(t, cl, o, 1);
  const auto& r = runs.reports()[0];
  EXPECT_GT(r.counters.elastic_scale_up_decisions, 0u);
  EXPECT_GT(r.counters.elastic_commissions, 0u);
  EXPECT_EQ(r.counters.elastic_provisions, r.counters.elastic_commissions);
}

// CRV-aware supply shaping engages for Phoenix (and only Phoenix exposes
// the demand signal).
TEST(ElasticRun, CrvShapingSteersPhoenixScaleUps) {
  const auto cl = MakeUniverse(48, 19);
  const auto t = trace::GenerateGoogleTrace(600, 24, 1.1, 19);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.elastic.enabled = true;
  o.elastic.base_machines = 24;
  o.elastic.reserve_machines = 24;
  o.elastic.warmup_delay = 10.0;
  o.elastic.target_wait = 1.0;
  const runner::RepeatedRuns phoenix_runs(t, cl, o, 1);
  EXPECT_GT(phoenix_runs.reports()[0].counters.elastic_crv_shaped_picks, 0u);

  o.scheduler = "eagle-c";
  const runner::RepeatedRuns eagle_runs(t, cl, o, 1);
  EXPECT_EQ(eagle_runs.reports()[0].counters.elastic_crv_shaped_picks, 0u);
}

// Every comparison scheduler used by bench_ext_elasticity survives churn.
TEST(ElasticRun, BaselineSchedulersSurviveChurnAuditClean) {
  const auto cl = MakeUniverse(60, 41);
  const auto t = trace::GenerateGoogleTrace(300, 32, 0.8, 41);
  for (const char* sched : {"eagle-c", "hawk-c"}) {
    auto o = ChurnOptions(sched);
    o.obs.audit = true;
    const runner::RepeatedRuns runs(t, cl, o, 1);
    EXPECT_EQ(runs.reports()[0].jobs.size(), t.size()) << sched;
  }
}

// ---- Auditor lifecycle rules ----------------------------------------------

obs::Event LifecycleEvent(double time, obs::EventType type,
                          std::uint32_t machine, double value = 0) {
  obs::Event e;
  e.time = time;
  e.type = type;
  e.machine = machine;
  e.value = value;
  return e;
}

TEST(AuditorLifecycle, LegalSequenceIsClean) {
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachinePark, 3));
  audit.OnEvent(LifecycleEvent(1, obs::EventType::kMachineProvision, 3, 30));
  audit.OnEvent(LifecycleEvent(31, obs::EventType::kMachineCommission, 3));
  audit.OnEvent(LifecycleEvent(90, obs::EventType::kMachineDrain, 3));
  audit.OnEvent(LifecycleEvent(120, obs::EventType::kMachineRetire, 3));
  audit.Finish();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
}

TEST(AuditorLifecycle, TaskStartOnProvisioningMachineIsViolation) {
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachinePark, 2));
  audit.OnEvent(LifecycleEvent(1, obs::EventType::kMachineProvision, 2, 30));
  obs::Event start = LifecycleEvent(2, obs::EventType::kTaskStart, 2, 5.0);
  start.job = 0;
  start.task = 0;
  audit.OnEvent(start);
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorLifecycle, TaskStartOnDrainingMachineIsAllowed) {
  // Draining machines may still *finish* work; binding checks are on probe
  // resolution and steals, and a start races legally with the drain edge.
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachineDrain, 1));
  obs::Event start = LifecycleEvent(1, obs::EventType::kTaskStart, 1, 5.0);
  start.job = 0;
  start.task = 0;
  audit.OnEvent(start);
  EXPECT_TRUE(audit.ok()) << audit.Summary();
}

TEST(AuditorLifecycle, PreemptOnDrainingMachineIsViolation) {
  // A draining machine's slot work belongs to the drain/retire sweep; a
  // preemption there would put the victim on two recovery paths (requeue +
  // sweep) — the conservation rule covers the machine lifecycle too.
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachineDrain, 1));
  obs::Event issue = LifecycleEvent(1, obs::EventType::kPreemptIssue, 1, 0.5);
  issue.job = 0;
  issue.task = 0;
  audit.OnEvent(issue);
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorLifecycle, PreemptOnActiveMachineIsClean) {
  obs::InvariantAuditor audit;
  obs::Event issue = LifecycleEvent(1, obs::EventType::kPreemptIssue, 1, 0.5);
  issue.job = 0;
  issue.task = 0;
  audit.OnEvent(issue);
  obs::Event requeue = LifecycleEvent(1, obs::EventType::kPreemptRequeue, 1);
  requeue.job = 0;
  requeue.task = 0;
  audit.OnEvent(requeue);
  audit.Finish();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
}

TEST(AuditorLifecycle, ProbeResolveOnDrainingMachineIsViolation) {
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachineDrain, 1));
  obs::Event resolve = LifecycleEvent(1, obs::EventType::kProbeResolve, 1);
  resolve.job = 0;
  resolve.task = 0;
  audit.OnEvent(resolve);
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorLifecycle, IllegalTransitionIsViolation) {
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachinePark, 4));
  // parked -> commission skips provisioning.
  audit.OnEvent(LifecycleEvent(1, obs::EventType::kMachineCommission, 4));
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorLifecycle, MachineLeftDrainingIsCapacityLeak) {
  obs::InvariantAuditor audit;
  audit.OnEvent(LifecycleEvent(0, obs::EventType::kMachineDrain, 6));
  EXPECT_TRUE(audit.ok());
  audit.Finish();
  EXPECT_FALSE(audit.ok());
}

TEST(AuditorLifecycle, OutOfServiceWorkerHoldingWorkIsViolation) {
  obs::InvariantAuditor audit;
  audit.CheckWorker(/*now=*/10, /*machine=*/2, /*busy=*/true,
                    /*failed=*/false, /*has_live_slot_event=*/true,
                    /*queue_len=*/0, /*est_queued_work=*/0,
                    /*final_state=*/false, /*out_of_service=*/true);
  EXPECT_FALSE(audit.ok());
}

}  // namespace
}  // namespace phoenix
