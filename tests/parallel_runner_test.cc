// Concurrency tests for the parallel experiment runner: thread-pool
// correctness, bit-identical results across thread budgets, and the
// cluster's eligibility caches under concurrent const access. Run these
// under ThreadSanitizer via -DPHOENIX_SANITIZE=thread (ctest -L concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "trace/generators.h"
#include "trace/synthesizer.h"
#include "util/thread_pool.h"

namespace phoenix::runner {
namespace {

// Restores the process-wide thread budget on scope exit so tests cannot
// leak their setting into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { SetExperimentThreads(n); }
  ~ScopedThreads() { SetExperimentThreads(0); }
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
  }
}

TEST(ThreadPool, SizeOneRunsInline) {
  util::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.ParallelFor(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelExperimentLoop, NestedLoopsRunSerial) {
  ScopedThreads threads(4);
  std::atomic<int> outer{0};
  ParallelExperimentLoop(4, [&](std::size_t) {
    EXPECT_TRUE(InParallelExperimentLoop());
    // The inner loop must not spawn another pool; it runs inline on this
    // worker, so per-iteration writes to this local are single-threaded.
    int inner = 0;
    ParallelExperimentLoop(8, [&](std::size_t) { ++inner; });
    EXPECT_EQ(inner, 8);
    ++outer;
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_FALSE(InParallelExperimentLoop());
}

// The tentpole guarantee: the thread budget must not leak into results.
TEST(RepeatedRuns, BitIdenticalAcrossThreadCounts) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 40, .seed = 21});
  const auto t = trace::GenerateGoogleTrace(400, 40, 0.8, 21);
  RunOptions o;
  o.scheduler = "phoenix";

  auto summarize = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    const RepeatedRuns runs(t, cl, o, 4);
    std::vector<double> values;
    for (const auto cf : {metrics::ClassFilter::kAll,
                          metrics::ClassFilter::kShort,
                          metrics::ClassFilter::kLong}) {
      values.push_back(runs.MeanResponsePercentile(
          99, cf, metrics::ConstraintFilter::kAll));
      values.push_back(runs.MeanQueuingPercentile(
          90, cf, metrics::ConstraintFilter::kConstrained));
    }
    values.push_back(runs.MeanUtilization());
    for (const auto& r : runs.reports()) {
      values.push_back(static_cast<double>(r.counters.probes_sent));
      values.push_back(static_cast<double>(r.counters.probes_cancelled));
      values.push_back(r.makespan);
    }
    return values;
  };

  const auto serial = summarize(1);
  const auto parallel = summarize(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Exact equality on purpose: same seeds, same per-run engines, no
    // cross-run floating-point accumulation.
    EXPECT_EQ(serial[i], parallel[i]) << "summary value " << i;
  }
}

// A lossy fabric draws every chaos decision from per-message RNG streams
// hashed off the experiment seed, so thread scheduling cannot perturb
// drop/delay outcomes: summaries stay bit-identical at any --threads.
TEST(RepeatedRuns, LossyFabricStaysBitIdenticalAcrossThreadCounts) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 40, .seed = 23});
  const auto t = trace::GenerateGoogleTrace(400, 40, 0.8, 23);
  RunOptions o;
  o.scheduler = "phoenix";
  o.config.net.model = net::LatencyModel::kLognormal;
  o.config.net.drop_rate = 0.05;
  o.config.net.duplicate_rate = 0.02;
  o.config.rpc.max_retries = 6;

  auto summarize = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    const RepeatedRuns runs(t, cl, o, 4);
    std::vector<double> values;
    for (const auto& r : runs.reports()) {
      values.push_back(r.makespan);
      values.push_back(static_cast<double>(r.counters.net_messages_sent));
      values.push_back(static_cast<double>(r.counters.net_messages_dropped));
      values.push_back(static_cast<double>(r.counters.rpc_retries));
      values.push_back(r.ResponseSummary(metrics::ClassFilter::kShort,
                                         metrics::ConstraintFilter::kAll)
                           .p99);
    }
    return values;
  };

  const auto serial = summarize(1);
  const auto parallel = summarize(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "summary value " << i;
  }
  // The chaos actually engaged (otherwise this test proves nothing).
  EXPECT_GT(serial[2], 0.0);  // dropped messages in the first report
}

TEST(RepeatedRuns, ReportsStayOrderedBySeedUnderParallelism) {
  ScopedThreads guard(4);
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 30, .seed = 9});
  const auto t = trace::GenerateYahooTrace(200, 30, 0.7, 9);
  RunOptions o;
  o.scheduler = "eagle-c";
  o.config.seed = 100;
  const RepeatedRuns runs(t, cl, o, 4);
  ASSERT_EQ(runs.reports().size(), 4u);
  // Slot i must hold seed 100 + i: rerun each seed serially and compare.
  for (std::size_t i = 0; i < 4; ++i) {
    RunOptions single = o;
    single.config.seed = 100 + i;
    const auto expected = RunSimulation(t, cl, single);
    EXPECT_EQ(runs.reports()[i].makespan, expected.makespan) << "slot " << i;
    EXPECT_EQ(runs.reports()[i].counters.probes_sent,
              expected.counters.probes_sent)
        << "slot " << i;
  }
}

// Many threads resolving overlapping constraint sets against one Cluster:
// the shared predicate/pool caches must neither race nor return wrong
// pools. Run under TSan to catch the former; the latter is checked against
// a serially-computed ground truth.
TEST(ClusterConcurrency, SatisfyingHammer) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 500, .seed = 31});
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 31);
  std::vector<cluster::ConstraintSet> sets;
  for (int i = 0; i < 64; ++i) sets.push_back(synth.Synthesize());

  // Ground truth from a cold, single-threaded cluster.
  const cluster::Cluster reference =
      cluster::BuildCluster({.num_machines = 500, .seed = 31});
  std::vector<std::size_t> expected;
  for (const auto& cs : sets) expected.push_back(reference.CountSatisfying(cs));

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 400;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> mismatches{0};
  for (std::size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t it = 0; it < kIters; ++it) {
        // Offset start per thread so cold keys are inserted while other
        // threads read the same and neighbouring keys.
        const std::size_t s = (w * 11 + it) % sets.size();
        if (cl.CountSatisfying(sets[s]) != expected[s]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ClusterConcurrency, SamplingSharesWarmCaches) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 300, .seed = 17});
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 17);
  std::vector<cluster::ConstraintSet> sets;
  for (int i = 0; i < 16; ++i) sets.push_back(synth.Synthesize());
  std::vector<std::thread> threads;
  std::atomic<std::size_t> bad{0};
  for (std::size_t w = 0; w < 6; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(1000 + w);  // RNGs are per-thread; the cluster is shared
      for (std::size_t it = 0; it < 300; ++it) {
        const auto& cs = sets[(w + it) % sets.size()];
        for (const auto id : cl.SampleSatisfying(cs, 4, rng)) {
          bool ok = true;
          for (const auto& c : cs) {
            ok = ok && cl.machine(id).Satisfies(c);
          }
          if (!ok) ++bad;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace phoenix::runner
