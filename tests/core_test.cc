// Unit tests for the Phoenix core: CRV monitor, admission control and the
// Phoenix scheduler's behavioural contracts.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "core/admission.h"
#include "core/crv.h"
#include "core/phoenix.h"
#include "runner/experiment.h"
#include "trace/generators.h"

namespace phoenix::core {
namespace {

using cluster::Attr;
using cluster::ConstraintOp;
using cluster::ConstraintSet;
using cluster::CrvDim;
using cluster::Machine;

/// A hand-built 4-machine cluster with known pools:
///   arch=0 on machines {0,1}, arch=1 on {2,3};
///   cores: 4,8,16,32 on machines 0..3.
cluster::Cluster TinyCluster() {
  std::vector<Machine> ms;
  for (std::uint32_t i = 0; i < 4; ++i) {
    Machine m;
    m.id = i;
    m.Set(Attr::kArch, i < 2 ? 0 : 1);
    m.Set(Attr::kNumCores, 4 << i);
    m.Set(Attr::kEthernetSpeed, 1);
    m.Set(Attr::kMaxDisks, 2);
    m.Set(Attr::kMinDisks, 2);
    m.Set(Attr::kKernelVersion, 3);
    m.Set(Attr::kPlatformFamily, 0);
    m.Set(Attr::kCpuClock, 24);
    m.Set(Attr::kMinMemory, 32);
    ms.push_back(m);
  }
  return cluster::Cluster(std::move(ms));
}

// ---------------------------------------------------------------- CrvMonitor

TEST(CrvMonitor, EmptyTableHasZeroRatios) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  const CrvSnapshot snap = monitor.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.max_ratio, 0.0);
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    EXPECT_DOUBLE_EQ(snap.ratio[d], 0.0);
    EXPECT_EQ(snap.demand[d], 0u);
  }
}

TEST(CrvMonitor, EnqueueAddsInverseOfPoolSize) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  // arch=0 pool has 2 machines: each queued entry adds 1/2 to the cpu dim.
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true}});
  monitor.OnEnqueue(cs);
  monitor.OnEnqueue(cs);
  const CrvSnapshot snap = monitor.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.RatioFor(CrvDim::kCpu), 1.0);
  EXPECT_EQ(snap.demand[static_cast<std::size_t>(CrvDim::kCpu)], 2u);
  EXPECT_EQ(snap.max_dim, CrvDim::kCpu);
  EXPECT_DOUBLE_EQ(snap.max_ratio, 1.0);
}

TEST(CrvMonitor, DequeueRestoresZero) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true},
                    {Attr::kKernelVersion, ConstraintOp::kEqual, 3, true}});
  monitor.OnEnqueue(cs);
  monitor.OnDequeue(cs);
  const CrvSnapshot snap = monitor.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.max_ratio, 0.0);
  EXPECT_EQ(monitor.DemandFor(CrvDim::kCpu), 0u);
  EXPECT_EQ(monitor.DemandFor(CrvDim::kOs), 0u);
}

TEST(CrvMonitor, DimensionsAreIndependent) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  // Kernel=3 matches all 4 machines: 1/4 per entry on the os dim.
  ConstraintSet os_cs({{Attr::kKernelVersion, ConstraintOp::kEqual, 3, true}});
  // cores>16 matches 1 machine: 1.0 per entry on the cpu dim.
  ConstraintSet cpu_cs({{Attr::kNumCores, ConstraintOp::kGreater, 16, true}});
  monitor.OnEnqueue(os_cs);
  monitor.OnEnqueue(cpu_cs);
  const CrvSnapshot snap = monitor.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.RatioFor(CrvDim::kOs), 0.25);
  EXPECT_DOUBLE_EQ(snap.RatioFor(CrvDim::kCpu), 1.0);
  EXPECT_EQ(snap.max_dim, CrvDim::kCpu);
}

TEST(CrvMonitor, UnconstrainedEntriesDoNotCount) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  monitor.OnEnqueue(ConstraintSet());
  EXPECT_DOUBLE_EQ(monitor.TakeSnapshot().max_ratio, 0.0);
}

TEST(CrvMonitor, CongestedAboveThreshold) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  ConstraintSet cs({{Attr::kNumCores, ConstraintOp::kGreater, 16, true}});
  monitor.OnEnqueue(cs);
  EXPECT_FALSE(monitor.TakeSnapshot().CongestedAbove(1.5));
  monitor.OnEnqueue(cs);
  EXPECT_TRUE(monitor.TakeSnapshot().CongestedAbove(1.5));
}

TEST(CrvMonitorDeathTest, DequeueUnderflowAborts) {
  const cluster::Cluster cl = TinyCluster();
  CrvMonitor monitor(cl);
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true}});
  EXPECT_DEATH(monitor.OnDequeue(cs), "underflow");
}

TEST(CrvSnapshot, ToStringNamesEveryDim) {
  CrvSnapshot snap;
  const std::string s = snap.ToString();
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    EXPECT_NE(
        s.find(std::string(cluster::CrvDimName(static_cast<CrvDim>(d)))),
        std::string::npos);
  }
}

// ---------------------------------------------------------------- Admission

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : cluster_(cluster::BuildCluster({.num_machines = 1000, .seed = 5})) {}

  sched::JobRuntime MakeJob(ConstraintSet cs, bool short_class = true) {
    spec_.id = 0;
    spec_.submit_time = 0;
    spec_.task_durations = {5.0};
    spec_.constraints = cs;
    sched::JobRuntime job;
    job.spec = &spec_;
    job.id = 0;
    job.effective = std::move(cs);
    job.constrained = true;
    job.short_class = short_class;
    return job;
  }

  /// A snapshot with one hot dimension.
  static CrvSnapshot HotSnapshot(CrvDim dim, double ratio = 5.0) {
    CrvSnapshot snap;
    snap.ratio[static_cast<std::size_t>(dim)] = ratio;
    snap.max_ratio = ratio;
    snap.max_dim = dim;
    return snap;
  }

  cluster::Cluster cluster_;
  trace::Job spec_;
};

TEST_F(AdmissionTest, RelaxesSoftConstraintOnHotDim) {
  AdmissionController ac(cluster_, 1.0, 1.25, 6);
  // A scarce soft request: 40 Gbps NIC (net dim), ~7 % of machines.
  auto job = MakeJob(ConstraintSet(
      {{Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, false}}));
  const auto relaxed = ac.Negotiate(job, HotSnapshot(CrvDim::kNet));
  EXPECT_EQ(relaxed, 1u);
  EXPECT_TRUE(job.effective.empty());
  EXPECT_NEAR(job.duration_multiplier, 1.25, 1e-12);
}

TEST_F(AdmissionTest, NeverRelaxesHardConstraints) {
  AdmissionController ac(cluster_, 1.0, 1.25, 6);
  auto job = MakeJob(ConstraintSet(
      {{Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, true}}));
  EXPECT_EQ(ac.Negotiate(job, HotSnapshot(CrvDim::kNet)), 0u);
  EXPECT_EQ(job.effective.size(), 1u);
}

TEST_F(AdmissionTest, ColdDimensionsAreLeftAlone) {
  AdmissionController ac(cluster_, 1.0, 1.25, 6);
  auto job = MakeJob(ConstraintSet(
      {{Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, false}}));
  CrvSnapshot cold;  // all ratios zero
  EXPECT_EQ(ac.Negotiate(job, cold), 0u);
  EXPECT_EQ(job.effective.size(), 1u);
}

TEST_F(AdmissionTest, LongJobsAreNotNegotiated) {
  AdmissionController ac(cluster_, 1.0, 1.25, 6);
  auto job = MakeJob(
      ConstraintSet({{Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, false}}),
      /*short_class=*/false);
  EXPECT_EQ(ac.Negotiate(job, HotSnapshot(CrvDim::kNet)), 0u);
}

TEST_F(AdmissionTest, RoomyPoolIsNotNegotiated) {
  AdmissionController ac(cluster_, 1.0, 1.25, 6);
  // x86 (~72 % of machines): plenty of room, no reason to pay the penalty.
  auto job = MakeJob(
      ConstraintSet({{Attr::kArch, ConstraintOp::kEqual, 0, false}}));
  EXPECT_EQ(ac.Negotiate(job, HotSnapshot(CrvDim::kCpu)), 0u);
}

TEST_F(AdmissionTest, RespectsRelaxationCap) {
  AdmissionController ac(cluster_, 1.0, 1.25, 1);
  auto job = MakeJob(ConstraintSet(
      {{Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, false},
       {Attr::kNumCores, ConstraintOp::kGreater, 16, false}}));
  CrvSnapshot snap;
  snap.ratio[static_cast<std::size_t>(CrvDim::kNet)] = 5.0;
  snap.ratio[static_cast<std::size_t>(CrvDim::kCpu)] = 5.0;
  snap.max_ratio = 5.0;
  snap.max_dim = CrvDim::kNet;
  EXPECT_EQ(ac.Negotiate(job, snap), 1u);
  EXPECT_EQ(job.effective.size(), 1u);
}

TEST_F(AdmissionTest, RequiresMaterialPoolWidening) {
  AdmissionController ac(cluster_, 1.0, 1.25, 6);
  // Two soft constraints on the same scarce pool shape: dropping just one of
  // a pair that is individually common widens little. Build a case where
  // the remaining constraint still pins the pool: cores > 16 (scarce) and
  // clock < 24 (scarce-ish); dropping clock must at least double the pool
  // to be accepted.
  auto job = MakeJob(ConstraintSet(
      {{Attr::kNumCores, ConstraintOp::kGreater, 16, true},   // hard, scarce
       {Attr::kKernelVersion, ConstraintOp::kGreater, 0, false}}));  // matches all
  CrvSnapshot snap = HotSnapshot(CrvDim::kOs);
  // Dropping the kernel constraint cannot widen the pool (cores pin it).
  EXPECT_EQ(ac.Negotiate(job, snap), 0u);
  EXPECT_EQ(job.effective.size(), 2u);
}

// ---------------------------------------------------------------- Phoenix

metrics::SimReport RunNamed(const std::string& name, const trace::Trace& t,
                            const cluster::Cluster& cl,
                            std::uint64_t seed = 21) {
  runner::RunOptions o;
  o.scheduler = name;
  o.config.seed = seed;
  return runner::RunSimulation(t, cl, o);
}

class PhoenixBehaviorTest : public ::testing::Test {
 protected:
  PhoenixBehaviorTest()
      : cluster_(cluster::BuildCluster({.num_machines = 150, .seed = 4})),
        trace_(trace::GenerateGoogleTrace(7000, 150, 0.85, 4)) {}
  cluster::Cluster cluster_;
  trace::Trace trace_;
};

TEST_F(PhoenixBehaviorTest, BeatsEagleTailOnCongestedConstrainedWorkload) {
  const auto phoenix = RunNamed("phoenix", trace_, cluster_);
  const auto eagle = RunNamed("eagle-c", trace_, cluster_);
  const double speedup = metrics::SpeedupAtPercentile(
      phoenix, eagle, 99, metrics::ClassFilter::kShort,
      metrics::ConstraintFilter::kAll);
  EXPECT_GT(speedup, 1.0);
}

TEST_F(PhoenixBehaviorTest, DoesNotHurtLongJobs) {
  const auto phoenix = RunNamed("phoenix", trace_, cluster_);
  const auto eagle = RunNamed("eagle-c", trace_, cluster_);
  const auto p = phoenix.ResponseSummary(metrics::ClassFilter::kLong,
                                         metrics::ConstraintFilter::kAll);
  const auto e = eagle.ResponseSummary(metrics::ClassFilter::kLong,
                                       metrics::ConstraintFilter::kAll);
  // Fig 8: long-job response times stay within a modest band of Eagle-C.
  EXPECT_LT(p.p99, e.p99 * 1.3);
}

TEST_F(PhoenixBehaviorTest, CrvReorderingHappensUnderLoad) {
  const auto report = RunNamed("phoenix", trace_, cluster_);
  EXPECT_GT(report.counters.tasks_reordered_crv, 0u);
  EXPECT_GT(report.counters.crv_reorder_rounds, 0u);
}

TEST_F(PhoenixBehaviorTest, ProactiveAdmissionFiresUnderLoad) {
  const auto report = RunNamed("phoenix", trace_, cluster_);
  EXPECT_GT(report.counters.soft_constraints_relaxed, 0u);
}

TEST_F(PhoenixBehaviorTest, FeatureTogglesDisableTheirCounters) {
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 21;
  const auto full = runner::RunSimulation(trace_, cluster_, o);
  o.config.phoenix_crv_reorder = false;
  o.config.phoenix_admission = false;
  const auto report = runner::RunSimulation(trace_, cluster_, o);
  EXPECT_EQ(report.counters.tasks_reordered_crv, 0u);
  // Only *forced* relaxations (jointly unsatisfiable constraint sets)
  // remain; proactive negotiation is off, so the count must drop well below
  // the full-feature run.
  EXPECT_LT(report.counters.soft_constraints_relaxed,
            full.counters.soft_constraints_relaxed);
}

TEST_F(PhoenixBehaviorTest, SlackBoundsBypassCount) {
  // With slack_threshold = 1, reordering is essentially disabled after one
  // bypass; the run must still complete and starve nobody (completion is
  // the proof — a starved probe would stall its job forever).
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 21;
  o.config.slack_threshold = 1;
  const auto report = runner::RunSimulation(trace_, cluster_, o);
  EXPECT_EQ(report.jobs.size(), trace_.size());
}

TEST_F(PhoenixBehaviorTest, CrvHistoryIsRecorded) {
  sim::Engine engine;
  sched::SchedulerConfig config;
  config.seed = 21;
  PhoenixScheduler p(engine, cluster_, config);
  p.SubmitTrace(trace_);
  engine.Run();
  const auto& history = p.crv_history();
  ASSERT_FALSE(history.empty());
  double prev = -1;
  bool ever_congested = false;
  for (const auto& sample : history) {
    EXPECT_GT(sample.time, prev);  // strictly ordered heartbeats
    prev = sample.time;
    EXPECT_GE(sample.snapshot.max_ratio, 0.0);
    ever_congested = ever_congested || sample.congested;
  }
  // This workload drives the cluster into congestion at least once.
  EXPECT_TRUE(ever_congested);
}

TEST(PhoenixUnit, SnapshotAccessorsExposed) {
  sim::Engine engine;
  const cluster::Cluster cl = TinyCluster();
  sched::SchedulerConfig config;
  PhoenixScheduler p(engine, cl, config);
  EXPECT_FALSE(p.congested());
  EXPECT_DOUBLE_EQ(p.snapshot().max_ratio, 0.0);
  EXPECT_EQ(p.name(), "phoenix");
}

}  // namespace
}  // namespace phoenix::core
