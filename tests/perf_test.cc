// Bit-identity gate for the simulator fast path (ctest -L perf).
//
// The calendar event queue, allocation-free callbacks, SoA heartbeat state,
// and the RPC slot pool are all pure-performance rewrites: they must not
// perturb the event stream by a single draw. These tests fingerprint entire
// fixed-seed runs — every job outcome printed at full double precision plus
// the engine's fired-event count — and demand byte equality across repeats
// and across the experiment thread budget, including the adversarial
// chaos + elastic + tenancy configuration where any hidden ordering or
// RNG-sequence change would surface.
#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "tenancy/config.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// Full-precision digest of everything a scheduling decision can influence.
// %.17g round-trips IEEE doubles exactly, so two digests match iff the runs
// were bit-identical.
std::string Fingerprint(const metrics::SimReport& r) {
  std::string out;
  Append(out, "%s workers=%zu events=%llu busy=%.17g makespan=%.17g ams=%.17g\n",
         r.scheduler_name.c_str(), r.num_workers,
         static_cast<unsigned long long>(r.events_fired), r.total_busy_time,
         r.makespan, r.active_machine_seconds);
  Append(out, "probes=%llu cancelled=%llu stolen=%llu jain=%.17g\n",
         static_cast<unsigned long long>(r.counters.probes_sent),
         static_cast<unsigned long long>(r.counters.probes_cancelled),
         static_cast<unsigned long long>(r.counters.tasks_stolen),
         r.tenant_fairness_jain);
  for (const auto& j : r.jobs) {
    Append(out, "j%llu s=%.17g c=%.17g q=%.17g w=%.17g n=%zu k=%d t=%u p=%u\n",
           static_cast<unsigned long long>(j.id), j.submit, j.completion,
           j.queuing_delay, j.max_task_wait, j.num_tasks,
           j.short_class ? 1 : 0, static_cast<unsigned>(j.tenant),
           static_cast<unsigned>(j.priority));
  }
  for (const auto& t : r.tenants) {
    Append(out, "t%u jobs=%llu adm=%llu rej=%llu pre=%llu use=%.17g\n",
           static_cast<unsigned>(t.id),
           static_cast<unsigned long long>(t.jobs),
           static_cast<unsigned long long>(t.admits),
           static_cast<unsigned long long>(t.rejects),
           static_cast<unsigned long long>(t.preemptions_issued),
           t.usage_seconds);
  }
  return out;
}

// Google-profile trace with jobs spread across three tenants.
trace::Trace TenantedTrace(std::size_t jobs, std::size_t workers, double load,
                           std::uint64_t seed) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = jobs;
  gen.num_workers = workers;
  gen.target_load = load;
  gen.seed = seed;
  gen.tenant_weights = {1.0, 1.0, 1.0};
  return trace::GenerateTrace("google-tenanted", gen);
}

// The adversarial configuration: lognormal control-plane latency with
// drop/duplicate/reorder chaos, an elastic fleet with transient leases, and
// three tenants exercising admission + preemption. Every fast-path rewrite
// in this PR sits on this run's hot path.
runner::RunOptions ChaosElasticTenancyOptions() {
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 31;
  o.config.net.model = net::LatencyModel::kLognormal;
  o.config.net.sigma = 0.4;
  o.config.net.drop_rate = 0.02;
  o.config.net.duplicate_rate = 0.01;
  o.config.net.reorder_rate = 0.02;
  o.config.tenancy.tenants.push_back(
      {"prod", tenancy::PriorityClass::kProd, 0.5, 0.0, 60.0});
  o.config.tenancy.tenants.push_back(
      {"batch", tenancy::PriorityClass::kBatch, 0.35, 0.6, 0.0});
  o.config.tenancy.tenants.push_back(
      {"scav", tenancy::PriorityClass::kBestEffort, 0.0, 0.0, 0.0});
  o.elastic.enabled = true;
  o.elastic.base_machines = 32;
  o.elastic.reserve_machines = 16;
  o.elastic.transient_machines = 12;
  o.elastic.transient_target = 12;
  o.elastic.warmup_delay = 20.0;
  o.elastic.drain_grace = 30.0;
  o.elastic.reclaim_rate = 1.0 / 200.0;
  o.elastic.reclaim_grace = 10.0;
  return o;
}

TEST(PerfIdentity, FixedSeedRunIsBitIdenticalAcrossRepeats) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 33});
  const auto t = TenantedTrace(400, 32, 0.8, 33);
  const auto o = ChaosElasticTenancyOptions();
  const auto a = runner::RunSimulation(t, cl, o);
  const auto b = runner::RunSimulation(t, cl, o);
  ASSERT_GT(a.events_fired, 0u);
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
}

TEST(PerfIdentity, ChaosElasticTenancyIdenticalAcrossThreadBudgets) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 33});
  const auto t = TenantedTrace(400, 32, 0.8, 33);
  const auto o = ChaosElasticTenancyOptions();
  std::vector<std::string> serial;
  {
    ScopedThreads threads(1);
    runner::RepeatedRuns runs(t, cl, o, 4);
    for (const auto& r : runs.reports()) serial.push_back(Fingerprint(r));
  }
  {
    ScopedThreads threads(4);
    runner::RepeatedRuns runs(t, cl, o, 4);
    ASSERT_EQ(runs.reports().size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(Fingerprint(runs.reports()[i]), serial[i]) << "run " << i;
    }
  }
}

// Plain static-fleet runs for every scheduler must also be repeat-identical:
// the figure benches are built from exactly these runs, and the committed
// paper outputs assume them byte-stable.
TEST(PerfIdentity, AllSchedulersRepeatIdenticalOnStaticFleet) {
  const auto cl = cluster::BuildCluster({.num_machines = 50, .seed = 7});
  const auto t = trace::GenerateGoogleTrace(300, 32, 0.8, 11);
  for (const char* name : {"phoenix", "eagle-c", "hawk-c"}) {
    runner::RunOptions o;
    o.scheduler = name;
    o.config.seed = 31;
    const auto a = runner::RunSimulation(t, cl, o);
    const auto b = runner::RunSimulation(t, cl, o);
    EXPECT_EQ(Fingerprint(a), Fingerprint(b)) << name;
  }
}

}  // namespace
}  // namespace phoenix
