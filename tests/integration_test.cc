// Integration tests: full simulations across traces and schedulers,
// asserting the structural and qualitative properties the paper's
// evaluation rests on.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/characterize.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

using metrics::ClassFilter;
using metrics::ConstraintFilter;

struct Workload {
  std::string profile;
  std::size_t nodes;
  std::size_t jobs;
};

class TraceSweepTest : public ::testing::TestWithParam<Workload> {
 protected:
  trace::Trace MakeTrace(double load = 0.85, std::uint64_t seed = 31) const {
    auto o = trace::ProfileByName(GetParam().profile);
    o.num_jobs = GetParam().jobs;
    o.num_workers = GetParam().nodes;
    o.target_load = load;
    o.seed = seed;
    return trace::GenerateTrace(GetParam().profile, o);
  }
  cluster::Cluster MakeCluster() const {
    return cluster::BuildCluster({.num_machines = GetParam().nodes, .seed = 31});
  }
  metrics::SimReport Run(const std::string& scheduler, const trace::Trace& t,
                         const cluster::Cluster& cl) const {
    runner::RunOptions o;
    o.scheduler = scheduler;
    o.config.seed = 31;
    return runner::RunSimulation(t, cl, o);
  }
};

TEST_P(TraceSweepTest, AllSchedulersCompleteEverything) {
  const auto t = MakeTrace();
  const auto cl = MakeCluster();
  for (const char* name : {"phoenix", "eagle-c", "hawk-c", "sparrow-c",
                           "yacc-d"}) {
    const auto report = Run(name, t, cl);
    EXPECT_EQ(report.jobs.size(), t.size()) << name;
    report.CheckInvariants();
  }
}

// Fig 4's premise: under Eagle-C, constrained short jobs respond slower than
// unconstrained ones.
TEST_P(TraceSweepTest, ConstrainedJobsAreSlowerUnderEagle) {
  const auto t = MakeTrace();
  const auto cl = MakeCluster();
  const auto report = Run("eagle-c", t, cl);
  const auto constrained =
      report.ResponseSummary(ClassFilter::kShort, ConstraintFilter::kConstrained);
  const auto unconstrained = report.ResponseSummary(
      ClassFilter::kShort, ConstraintFilter::kUnconstrained);
  EXPECT_GT(constrained.p99, unconstrained.p99 * 0.9);
  EXPECT_GT(constrained.mean, unconstrained.mean);
}

// Fig 2's premise: stripping constraints (the Baseline series) improves
// queuing delay.
TEST_P(TraceSweepTest, BaselineWithoutConstraintsQueuesLess) {
  const auto t = MakeTrace();
  const auto bare = t.WithoutConstraints();
  const auto cl = MakeCluster();
  const auto with = Run("eagle-c", t, cl);
  const auto without = Run("eagle-c", bare, cl);
  const auto qc = with.QueuingSummary(ClassFilter::kShort, ConstraintFilter::kAll);
  const auto qb =
      without.QueuingSummary(ClassFilter::kShort, ConstraintFilter::kAll);
  EXPECT_LT(qb.p99, qc.p99 * 1.05);
}

// The paper's headline: Phoenix's short-job tail beats Eagle-C's at high
// utilization on every trace. Both schedulers are stochastic (probe/steal
// target sampling), so assert the paper's multi-seed mean (§V-B averages
// over repeated runs) rather than a single scheduler seed.
TEST_P(TraceSweepTest, PhoenixImprovesShortJobTail) {
  const auto t = MakeTrace();
  const auto cl = MakeCluster();
  constexpr std::size_t kRuns = 3;
  runner::RunOptions po;
  po.scheduler = "phoenix";
  po.config.seed = 31;
  runner::RunOptions eo = po;
  eo.scheduler = "eagle-c";
  const runner::RepeatedRuns phoenix(t, cl, po, kRuns);
  const runner::RepeatedRuns eagle(t, cl, eo, kRuns);
  const double p99_phoenix = phoenix.MeanResponsePercentile(
      99, ClassFilter::kShort, ConstraintFilter::kAll);
  const double p99_eagle = eagle.MeanResponsePercentile(
      99, ClassFilter::kShort, ConstraintFilter::kAll);
  ASSERT_GT(p99_phoenix, 0.0);
  EXPECT_GT(p99_eagle / p99_phoenix, 1.0);
}

// Table III's premise: roughly half the tasks are constrained and the short
// share matches the profile.
TEST_P(TraceSweepTest, WorkloadMixMatchesTableThree) {
  const auto t = MakeTrace();
  const auto stats = t.ComputeStats();
  EXPECT_NEAR(stats.constrained_task_fraction, 0.5, 0.12);
  EXPECT_GT(stats.short_job_fraction, 0.88);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, TraceSweepTest,
    ::testing::Values(Workload{"google", 120, 5000},
                      Workload{"yahoo", 120, 5000},
                      Workload{"cloudera", 120, 5000}),
    [](const auto& info) { return info.param.profile; });

// ----------------------------------------------------------- load sweep

// Fig 7's premise: the Phoenix advantage grows with utilization and
// converges toward parity as the cluster empties.
TEST(LoadSweep, AdvantageShrinksAtLowUtilization) {
  const std::size_t base_nodes = 120;
  const auto t = trace::GenerateGoogleTrace(5000, base_nodes, 0.85, 37);
  double high_util_speedup = 0, low_util_speedup = 0;
  for (const auto& [nodes, out] :
       std::vector<std::pair<std::size_t, double*>>{
           {base_nodes, &high_util_speedup}, {3 * base_nodes, &low_util_speedup}}) {
    const auto cl = cluster::BuildCluster({.num_machines = nodes, .seed = 37});
    runner::RunOptions o;
    o.config.seed = 37;
    o.scheduler = "phoenix";
    const auto phoenix = runner::RunSimulation(t, cl, o);
    o.scheduler = "eagle-c";
    const auto eagle = runner::RunSimulation(t, cl, o);
    *out = metrics::SpeedupAtPercentile(phoenix, eagle, 99, ClassFilter::kShort,
                                        ConstraintFilter::kAll);
  }
  EXPECT_GT(high_util_speedup, 1.0);
  // At 3x the fleet the two schedulers approach parity (within noise).
  EXPECT_LT(low_util_speedup, high_util_speedup);
  EXPECT_GT(low_util_speedup, 0.5);
}

// ----------------------------------------------------------- supply/demand

// Fig 6's shape: demand has a mode at 2 constraints; supply declines with
// constraint count and sits below demand at the mode.
TEST(SupplyDemand, FigureSixShapeHolds) {
  const auto t = trace::GenerateGoogleTrace(8000, 200, 0.8, 41);
  const auto cl = cluster::BuildCluster({.num_machines = 2000, .seed = 41});
  const auto usage = trace::CharacterizeConstraints(t);
  const auto supply = trace::SupplyCurve(t, cl);
  EXPECT_GT(usage.demand_pct[1], usage.demand_pct[0]);  // mode at 2
  EXPECT_GT(usage.demand_pct[1], usage.demand_pct[3]);
  EXPECT_GT(supply[0], supply[3]);  // declining supply
  EXPECT_LT(supply[1], 60.0);       // a 2-constraint set is not universal
}

// ----------------------------------------------------------- stress

TEST(Stress, TinyClusterHugeBacklogDrains) {
  // 2 machines, 200 jobs arriving almost simultaneously: deep queues, heavy
  // reordering, every scheduler must still drain.
  std::vector<trace::Job> jobs;
  util::Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    trace::Job j;
    j.id = static_cast<trace::JobId>(i);
    j.submit_time = i * 1e-3;
    j.task_durations = {rng.Uniform(0.5, 5.0)};
    jobs.push_back(j);
  }
  trace::Trace t("stress", std::move(jobs));
  t.set_short_cutoff(10.0);
  const auto cl = cluster::BuildCluster({.num_machines = 2, .seed = 43});
  for (const char* name : {"phoenix", "eagle-c", "sparrow-c"}) {
    runner::RunOptions o;
    o.scheduler = name;
    const auto report = runner::RunSimulation(t, cl, o);
    EXPECT_EQ(report.jobs.size(), 200u) << name;
    // Single-slot workers: makespan at least total work / machines.
    double work = 0;
    for (const auto& j : report.jobs) (void)j, work += 0;  // placate lints
    EXPECT_GT(report.makespan, 50.0) << name;
  }
}

TEST(Stress, AllConstrainedWorkloadCompletes) {
  auto o = trace::GoogleProfile();
  o.num_jobs = 1000;
  o.num_workers = 60;
  o.target_load = 0.9;
  o.seed = 47;
  o.synth.constrained_fraction = 1.0;
  const auto t = trace::GenerateTrace("all-constrained", o);
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 47});
  runner::RunOptions ro;
  ro.scheduler = "phoenix";
  const auto report = runner::RunSimulation(t, cl, ro);
  EXPECT_EQ(report.jobs.size(), 1000u);
  for (const auto& j : report.jobs) EXPECT_TRUE(j.constrained);
}

TEST(Stress, HomogeneousFleetStillWorks) {
  // heterogeneity 0: every machine identical; all satisfiable constraints
  // match everything or nothing — forced relaxations may occur but every job
  // completes.
  const auto t = trace::GenerateGoogleTrace(800, 60, 0.8, 53);
  const auto cl = cluster::BuildCluster(
      {.num_machines = 60, .seed = 53, .heterogeneity = 0.0});
  runner::RunOptions o;
  o.scheduler = "phoenix";
  const auto report = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(report.jobs.size(), 800u);
}

}  // namespace
}  // namespace phoenix
