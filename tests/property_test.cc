// Property-based suites: invariants that must hold for every scheduler on
// every workload shape, swept over load levels, burstiness and seeds.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "runner/registry.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

struct PropertyCase {
  std::string scheduler;
  double load;
  double burst_factor;
  std::uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string n = info.param.scheduler + "_l" +
                  std::to_string(static_cast<int>(info.param.load * 100)) +
                  "_b" + std::to_string(static_cast<int>(info.param.burst_factor)) +
                  "_s" + std::to_string(info.param.seed);
  for (auto& ch : n)
    if (ch == '-' || ch == '.') ch = '_';
  return n;
}

class SchedulerInvariantTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void Run() {
    const auto& p = GetParam();
    auto gen = trace::GoogleProfile();
    gen.num_jobs = 800;
    gen.num_workers = 60;
    gen.target_load = p.load;
    gen.burst_factor = p.burst_factor;
    gen.seed = p.seed;
    trace_ = trace::GenerateTrace("prop", gen);
    cluster_ = std::make_unique<cluster::Cluster>(
        cluster::BuildCluster({.num_machines = 60, .seed = p.seed}));
    runner::RunOptions o;
    o.scheduler = p.scheduler;
    o.config.seed = p.seed;
    report_ = runner::RunSimulation(trace_, *cluster_, o);
  }

  trace::Trace trace_;
  std::unique_ptr<cluster::Cluster> cluster_;
  metrics::SimReport report_;
};

TEST_P(SchedulerInvariantTest, CoreInvariantsHold) {
  Run();
  // 1. Conservation: every job completed, with its full task count.
  ASSERT_EQ(report_.jobs.size(), trace_.size());
  for (const auto& job : report_.jobs) {
    EXPECT_EQ(job.num_tasks, trace_.job(job.id).num_tasks());
  }
  // 2. Physics: a job can never respond faster than its longest task, and
  //    queuing delay never exceeds response time.
  for (const auto& job : report_.jobs) {
    const auto& durations = trace_.job(job.id).task_durations;
    const double longest = *std::max_element(durations.begin(), durations.end());
    EXPECT_GE(job.response(), longest - 1e-9) << job.id;
    EXPECT_LE(job.queuing_delay, job.response() + 1e-9) << job.id;
  }
  // 3. Work conservation: busy time >= raw work (relaxation only adds) and
  //    utilization <= 1 with single-slot workers.
  double work = 0;
  for (const auto& j : trace_.jobs()) work += j.total_work();
  EXPECT_GE(report_.total_busy_time, work - 1e-6);
  EXPECT_LE(report_.Utilization(), 1.0 + 1e-9);
  // 4. Probe accounting: resolved-as-noop probes never exceed those sent.
  EXPECT_LE(report_.counters.probes_cancelled, report_.counters.probes_sent);
  // 5. Structural report checks.
  report_.CheckInvariants();
}

TEST_P(SchedulerInvariantTest, ProbeCountMatchesPlane) {
  Run();
  // Distributed-plane jobs get exactly probe_ratio probes per task (plus
  // failure re-sends, which are off here); centralized-plane jobs get none.
  std::size_t short_tasks = 0, all_tasks = 0;
  for (const auto& job : report_.jobs) {
    all_tasks += job.num_tasks;
    if (job.short_class) short_tasks += job.num_tasks;
  }
  const auto& p = GetParam();
  if (p.scheduler == "sparrow-c") {
    EXPECT_EQ(report_.counters.probes_sent, 2 * all_tasks);
  } else if (p.scheduler == "yacc-d" || p.scheduler == "central-c") {
    EXPECT_EQ(report_.counters.probes_sent, 0u);
  } else {
    EXPECT_EQ(report_.counters.probes_sent, 2 * short_tasks);
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (const auto& sched : runner::SchedulerNames()) {
    cases.push_back({sched, 0.5, 5.0, 101});
    cases.push_back({sched, 0.9, 12.0, 202});
  }
  // Extra seeds for the flagship pair.
  for (const std::uint64_t seed : {303, 404, 505}) {
    cases.push_back({"phoenix", 0.85, 10.0, seed});
    cases.push_back({"eagle-c", 0.85, 10.0, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerInvariantTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// ---- generator properties over a parameter grid -------------------------

struct GenCase {
  double load;
  double burst_factor;
  double short_fraction;
  std::uint64_t seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, StructureHoldsAcrossGrid) {
  const auto& p = GetParam();
  auto gen = trace::GoogleProfile();
  gen.num_jobs = 2500;
  gen.num_workers = 150;
  gen.target_load = p.load;
  gen.burst_factor = p.burst_factor;
  gen.short_job_fraction = p.short_fraction;
  gen.seed = p.seed;
  const auto t = trace::GenerateTrace("grid", gen);
  t.CheckInvariants();
  const auto stats = t.ComputeStats();
  EXPECT_EQ(stats.num_jobs, 2500u);
  EXPECT_NEAR(stats.short_job_fraction, p.short_fraction, 0.04);
  EXPECT_NEAR(t.OfferedLoad(150), p.load, p.load * 0.45);
  // The short cutoff must actually separate the classes it was built from.
  std::size_t agree = 0;
  for (const auto& j : t.jobs()) {
    agree += (j.mean_task_duration() <= t.short_cutoff()) == j.short_job;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(t.size()), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorPropertyTest,
    ::testing::Values(GenCase{0.5, 1.0, 0.85, 1}, GenCase{0.7, 8.0, 0.90, 2},
                      GenCase{0.9, 15.0, 0.95, 3}, GenCase{0.85, 10.0, 0.80, 4},
                      GenCase{0.3, 5.0, 0.92, 5}, GenCase{1.0, 20.0, 0.90, 6}),
    [](const auto& info) {
      return "case" + std::to_string(info.index);
    });

}  // namespace
}  // namespace phoenix
