// Figure 9: breakdown of benefits — queuing delay of short jobs (p90/p99)
// for both constrained and unconstrained slices, Phoenix vs Eagle-C on the
// Google trace. The paper's point: CRV reordering helps BOTH slices, since
// stalled constrained jobs also block the unconstrained tasks queued behind
// them.
#include <cstdio>

#include "bench/common.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 2);
  bench::PrintHeader("Figure 9: queuing delay breakdown (Google)", o, "Fig 9");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  const auto phoenix_runs = bench::Run("phoenix", trace, cluster, o);
  const auto eagle_runs = bench::Run("eagle-c", trace, cluster, o);

  util::TextTable table(
      {"slice", "pct", "Phoenix", "Eagle-C", "Eagle-C / Phoenix"});
  for (const auto& [label, kf] :
       std::vector<std::pair<std::string, metrics::ConstraintFilter>>{
           {"constrained", metrics::ConstraintFilter::kConstrained},
           {"unconstrained", metrics::ConstraintFilter::kUnconstrained}}) {
    for (const double p : {90.0, 99.0}) {
      const double ph = phoenix_runs.MeanQueuingPercentile(
          p, metrics::ClassFilter::kShort, kf);
      const double ea = eagle_runs.MeanQueuingPercentile(
          p, metrics::ClassFilter::kShort, kf);
      table.AddRow({label, util::StrFormat("p%.0f", p),
                    util::HumanDuration(ph), util::HumanDuration(ea),
                    util::StrFormat("%.2fx", ph > 0 ? ea / ph : 0.0)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape: Phoenix improves the p99 queuing delay of BOTH "
              "constrained and unconstrained short jobs\n");
  return 0;
}
