// Simulator-core throughput: simulated events/sec and tasks/sec for one
// run, swept over fleet scale and scheduler. This is the meta-benchmark the
// perf work is graded on — it measures the harness, not the paper — so its
// cells carry wall-clock numbers that are machine-dependent and must never
// be diffed byte-for-byte (unlike the paper-figure benches).
//
// The committed BENCH_core_throughput.json is the regression baseline the
// CI perf-smoke gate compares against (scripts/check.sh: fail on >25 %
// events/sec regression at reduced scale).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace phoenix;

namespace {

// "1000,15000,100000" -> {1000, 15000, 100000}.
std::vector<std::size_t> ParseScales(const std::string& spec) {
  std::vector<std::size_t> scales;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v <= 0) {
        std::fprintf(stderr, "--scales expects positive integers, got '%s'\n",
                     tok.c_str());
        std::exit(1);
      }
      scales.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (scales.empty()) {
    std::fprintf(stderr, "--scales must name at least one fleet size\n");
    std::exit(1);
  }
  return scales;
}

std::vector<std::string> ParseSchedulers(const std::string& spec) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (!tok.empty()) names.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (names.empty()) {
    std::fprintf(stderr, "--schedulers must name at least one scheduler\n");
    std::exit(1);
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string json_path = flags.GetString("json", "");
  const std::string scales_spec = flags.GetString("scales", "1000,15000");
  const std::string sched_spec =
      flags.GetString("schedulers", "phoenix,eagle-c,hawk-c");
  // Trace size scales with the fleet so per-worker load stays comparable
  // across cells (the default --jobs=50*nodes would make 100k workers
  // unaffordable as a routine benchmark).
  const std::size_t jobs_per_node =
      static_cast<std::size_t>(flags.GetInt("jobs-per-node", 4));
  auto o = bench::ParseBenchOptions(flags, 1000, 1);
  if (o.paper && !flags.Provided("scales")) {
    // Full sweep for the committed artifact.
    o.nodes = 1000;
  }
  const std::vector<std::size_t> scales =
      ParseScales(o.paper && !flags.Provided("scales") ? "1000,15000,100000"
                                                       : scales_spec);
  const std::vector<std::string> schedulers = ParseSchedulers(sched_spec);
  // Throughput cells time a single-threaded engine drain; overlapping runs
  // would contend for cores and corrupt the wall-clock numbers.
  runner::SetExperimentThreads(1);

  bench::PrintHeader("Core throughput: simulated events/sec by fleet scale",
                     o, "harness meta-benchmark (no paper figure)");

  bench::JsonEmitter json("core_throughput",
                          "Simulated events/sec and tasks/sec per single-run "
                          "engine drain, by scheduler and fleet scale");
  json.AddCommonConfig(o);
  json.config()
      .AddInt("jobs_per_node", jobs_per_node)
      .Add("scales", scales_spec)
      .Add("schedulers", sched_spec);

  std::printf("%-10s %9s %9s %12s %9s %12s %12s\n", "scheduler", "workers",
              "jobs", "events", "wall_s", "events/sec", "tasks/sec");
  for (const std::size_t scale : scales) {
    bench::BenchOptions so = o;
    so.nodes = scale;
    so.jobs = jobs_per_node * scale;
    const auto trace = bench::MakeTrace("google", so);
    const auto cl = bench::MakeCluster(so.nodes, so.seed);
    for (const auto& sched : schedulers) {
      const auto rr = bench::Run(sched, trace, cl, so);
      double wall = 0;
      std::uint64_t events = 0;
      std::size_t tasks = 0;
      double makespan = 0;
      for (const auto& r : rr.reports()) {
        wall += r.sim_wall_seconds;
        events += r.events_fired;
        tasks += r.CountTasks(metrics::ClassFilter::kAll,
                              metrics::ConstraintFilter::kAll);
        makespan += r.makespan;
      }
      const double events_per_sec = wall > 0 ? events / wall : 0;
      const double tasks_per_sec = wall > 0 ? tasks / wall : 0;
      std::printf("%-10s %9zu %9zu %12llu %9.3f %12.0f %12.0f\n",
                  sched.c_str(), scale, so.jobs,
                  static_cast<unsigned long long>(events), wall,
                  events_per_sec, tasks_per_sec);
      json.NewCell()
          .Add("scheduler", sched)
          .AddInt("workers", scale)
          .AddInt("jobs", so.jobs)
          .AddInt("events", events)
          .AddInt("tasks", tasks)
          .Add("wall_seconds", wall)
          .Add("events_per_sec", events_per_sec)
          .Add("tasks_per_sec", tasks_per_sec)
          .Add("sim_makespan", makespan / static_cast<double>(o.runs));
    }
  }
  std::printf("\nnote: wall-clock cells are machine-dependent; compare "
              "ratios on one host, not artifacts across hosts\n");
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}
