// Extension bench: sharded control plane with eventually-consistent gossip.
//
// The paper's Phoenix is a single logical scheduler scanning the whole fleet
// every heartbeat. This sweep partitions the fleet across N scheduler shards
// (src/federation): each shard heartbeats only its own territory and learns
// the rest of the fleet through gossiped digests (per-dimension CRV load,
// mean E[W], free slots) over the control-plane fabric. Cells sweep
// shards x gossip period x fabric chaos and report:
//
//   * heartbeat_span — the largest per-tick worker scan of any shard,
//     ceil(nodes/shards): the evidence that no single shard's heartbeat
//     runs an O(fleet) loop (the unsharded span equals the fleet);
//   * short-job p90 queuing delay vs the unsharded baseline — the placement
//     cost of scheduling on a stale view;
//   * the gossip/offload/bind counter columns — stale digests dropped,
//     offloads blocked on staleness, and the optimistic cross-shard bind
//     accept/reject traffic resolved through the redispatch path.
//
// Every cell runs with the invariant auditor on: stale views may degrade
// placement (rejects, blocked offloads), never correctness.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "federation/shard_map.h"
#include "metrics/percentile.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string json_path = flags.GetString("json", "");
  auto o = bench::ParseBenchOptions(flags, 200, 2);
  if (!flags.Provided("load")) o.load = 0.5;
  // Correctness evidence rides in every cell unless explicitly disabled.
  if (!flags.Provided("audit")) o.obs.audit = true;
  bench::PrintHeader("Extension: sharded control plane (CRV gossip)", o,
                     "beyond-paper: the paper's scheduler is unsharded");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);

  const std::vector<std::uint32_t> shard_counts = {1, 2, 4};
  const std::vector<double> gossip_periods = {1.5, 9.0};

  bench::JsonEmitter emitter(
      "bench_ext_federation",
      "shards x gossip period x fabric chaos; heartbeat_span shows the "
      "per-shard scan bound, fed_* counters the gossip/offload/bind traffic");
  emitter.AddCommonConfig(o);
  emitter.config().Add("audit", o.obs.audit);

  util::TextTable t({"shards", "gossip", "chaos", "span", "short p90 qdelay",
                     "slowdown", "applied", "stale", "offloads", "binds",
                     "rejects"});
  double baseline = 0;
  for (const std::uint32_t shards : shard_counts) {
    for (const double period : gossip_periods) {
      for (const bool chaos : {false, true}) {
        // The unsharded fleet has no gossip: one baseline cell is enough.
        if (shards == 1 && (period != gossip_periods.front() || chaos)) {
          continue;
        }
        runner::RunOptions ro;
        ro.scheduler = "phoenix";
        ro.config.seed = o.seed;
        ro.config.net = o.net;
        ro.config.rpc = o.rpc;
        ro.obs = o.obs;
        ro.federation = o.federation;
        ro.federation.shards = shards;
        ro.federation.gossip_period = period;
        if (chaos) {
          // Lossy, jittery control plane: gossip digests (and everything
          // else) get dropped, duplicated, delayed, and reordered.
          // Staleness bounds and strict version ordering must absorb it.
          ro.config.net.model = net::LatencyModel::kLognormal;
          ro.config.net.drop_rate = 0.05;
          ro.config.net.duplicate_rate = 0.05;
          ro.config.net.reorder_rate = 0.10;
        }
        const runner::RepeatedRuns runs(trace, cluster, ro, o.runs);
        const double p90 = runs.MeanQueuingPercentile(
            90, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll);
        if (baseline == 0) baseline = p90;  // first cell: unsharded, ideal
        const double slowdown = p90 / baseline;
        const auto c = runner::AggregateCounters(runs.reports());
        const std::size_t span =
            federation::ShardMap(o.nodes, shards).max_span();
        t.AddRow({util::StrFormat("%u", shards),
                  util::StrFormat("%.1fs", period), chaos ? "on" : "off",
                  util::WithCommas(static_cast<std::int64_t>(span)),
                  util::HumanDuration(p90),
                  util::StrFormat("%.2fx", slowdown),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.fed_gossip_applied)),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.fed_gossip_stale_dropped)),
                  util::WithCommas(static_cast<std::int64_t>(c.fed_offloads)),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.fed_bind_attempts)),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.fed_bind_rejects))});
        auto& cell = emitter.NewCell();
        cell.AddInt("shards", shards)
            .Add("gossip_period", period)
            .Add("chaos", chaos)
            .AddInt("heartbeat_span", span)
            .Add("short_p90_qdelay", p90)
            .Add("slowdown", slowdown)
            .AddInt("fed_gossip_published", c.fed_gossip_published)
            .AddInt("fed_gossip_applied", c.fed_gossip_applied)
            .AddInt("fed_gossip_stale_dropped", c.fed_gossip_stale_dropped)
            .AddInt("fed_offloads", c.fed_offloads)
            .AddInt("fed_offloads_blocked_stale", c.fed_offloads_blocked_stale)
            .AddInt("fed_cross_shard_probes", c.fed_cross_shard_probes)
            .AddInt("fed_bind_attempts", c.fed_bind_attempts)
            .AddInt("fed_bind_accepts", c.fed_bind_accepts)
            .AddInt("fed_bind_rejects", c.fed_bind_rejects)
            .AddInt("fed_territory_fallbacks", c.fed_territory_fallbacks);
        bench::AddThroughput(cell, runs.reports());
      }
    }
  }
  std::printf("%s\n", t.ToString().c_str());
  if (!json_path.empty() && !emitter.WriteTo(json_path)) return 1;
  std::printf(
      "expected shape: heartbeat_span shrinks as ceil(nodes/shards) while "
      "the p90 slowdown stays modest; chaos raises stale drops, blocked "
      "offloads, and bind rejects — never auditor violations\n");
  return 0;
}
