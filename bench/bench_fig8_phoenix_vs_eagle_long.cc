// Figure 8: long-job response times (p50/p90/p99) for Phoenix normalized to
// Eagle-C — the "do no harm" check. The paper shows ratios ~1.0 at every
// percentile and cluster size: CRV reordering must not hurt long jobs.
#include <cstdio>

#include "bench/sweep.h"
#include "metrics/fairness.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 2);
  bench::PrintHeader("Figure 8: Phoenix vs Eagle-C, long jobs", o,
                     "Fig 8a/8b/8c");
  for (const std::string profile : {"yahoo", "cloudera", "google"}) {
    bench::RunNormalizedSweep(profile, "phoenix", "eagle-c",
                              metrics::ClassFilter::kLong, o);
  }

  // The companion fairness claim (§VI-D): reordering must not skew the
  // slowdown distribution of long or unconstrained jobs.
  std::printf("--- fairness (Jain index over per-job slowdowns, google) ---\n");
  {
    const auto trace = bench::MakeTrace("google", o);
    const auto cluster = bench::MakeCluster(o.nodes, o.seed);
    util::TextTable t({"scheduler", "Jain all", "Jain short", "Jain long",
                       "uncon/con slowdown"});
    for (const std::string sched : {"phoenix", "eagle-c"}) {
      runner::RunOptions ro;
      ro.scheduler = sched;
      ro.config.seed = o.seed;
      const auto report = runner::RunSimulation(trace, cluster, ro);
      const auto f = metrics::ComputeFairness(report, trace);
      t.AddRow({sched, util::StrFormat("%.3f", f.jain_all),
                util::StrFormat("%.3f", f.jain_short),
                util::StrFormat("%.3f", f.jain_long),
                util::StrFormat("%.2f", f.unconstrained_to_constrained)});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf("paper shape: ratios stay ~1.0 (+/- noise) at every "
              "percentile — long jobs are unaffected — and Phoenix's "
              "fairness indices match Eagle-C's\n");
  return 0;
}
