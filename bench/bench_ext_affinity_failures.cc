// Extension benches beyond the paper's figures, covering behaviour the
// paper discusses qualitatively:
//   * §III-A: affinity (spread / colocate) constraints "have a significant
//     impact on task scheduling delay by a factor of 2 to 4" — measured
//     here by slicing response times per placement preference;
//   * fault tolerance: the spread preference exists because machines fail —
//     the failure sweep shows schedulers replaying killed work and the
//     latency cost of rising churn.
#include <cstdio>

#include "bench/common.h"
#include "metrics/fairness.h"
#include "metrics/percentile.h"

using namespace phoenix;

namespace {

metrics::PercentileSummary ByPlacement(const metrics::SimReport& report,
                                       trace::PlacementPref pref) {
  std::vector<double> values;
  for (const auto& job : report.jobs) {
    if (job.placement == pref && job.num_tasks > 1) {
      values.push_back(job.response());
    }
  }
  return metrics::Summarize(values);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader("Extensions: affinity placement + failure injection", o,
                     "paper §III-A (affinity), fault-tolerance motivation");

  {
    std::printf("--- affinity: response by placement preference ---\n");
    util::TextTable t({"scheduler", "affinity mix", "none p99", "spread p99",
                       "colocate p99", "spread viol", "colo misses"});
    for (const double frac : {0.15, 0.30}) {
      auto gen = trace::GoogleProfile();
      gen.num_jobs = o.jobs;
      gen.num_workers = o.nodes;
      gen.target_load = o.load;
      gen.seed = o.seed;
      gen.spread_fraction = frac;
      gen.colocate_fraction = frac;
      const auto trace = trace::GenerateTrace("google", gen);
      const auto cluster = bench::MakeCluster(o.nodes, o.seed);
      for (const std::string sched : {"phoenix", "eagle-c"}) {
        runner::RunOptions ro;
        ro.scheduler = sched;
        ro.config.seed = o.seed;
        const auto report = runner::RunSimulation(trace, cluster, ro);
        t.AddRow({sched, util::StrFormat("%.0f%%", 100 * frac),
                  util::HumanDuration(
                      ByPlacement(report, trace::PlacementPref::kNone).p99),
                  util::HumanDuration(
                      ByPlacement(report, trace::PlacementPref::kSpread).p99),
                  util::HumanDuration(
                      ByPlacement(report, trace::PlacementPref::kColocate).p99),
                  util::WithCommas(static_cast<std::int64_t>(
                      report.counters.placement_spread_violations)),
                  util::WithCommas(static_cast<std::int64_t>(
                      report.counters.placement_colocate_misses))});
      }
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("expected shape: affinity-constrained jobs respond slower "
                "than unconstrained ones (paper: 2-4x scheduling-delay "
                "impact); colocate pays more than spread under load\n\n");
  }

  {
    std::printf("--- failure injection sweep (phoenix vs eagle-c) ---\n");
    const auto trace = bench::MakeTrace("google", o);
    const auto cluster = bench::MakeCluster(o.nodes, o.seed);
    util::TextTable t({"scheduler", "MTBF/machine", "failures", "rescheduled",
                       "short p99", "long p99", "Jain (all)"});
    for (const double mtbf : {0.0, 20000.0, 5000.0, 1500.0}) {
      for (const std::string sched : {"phoenix", "eagle-c"}) {
        runner::RunOptions ro;
        ro.scheduler = sched;
        ro.config.seed = o.seed;
        ro.config.machine_mtbf = mtbf;
        ro.config.machine_mttr = 300.0;
        const auto report = runner::RunSimulation(trace, cluster, ro);
        const auto fairness = metrics::ComputeFairness(report, trace);
        t.AddRow(
            {sched, mtbf == 0 ? "off" : util::HumanDuration(mtbf),
             util::WithCommas(
                 static_cast<std::int64_t>(report.counters.machine_failures)),
             util::WithCommas(static_cast<std::int64_t>(
                 report.counters.tasks_rescheduled_failure)),
             util::HumanDuration(
                 report.ResponseSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll)
                     .p99),
             util::HumanDuration(
                 report.ResponseSummary(metrics::ClassFilter::kLong,
                                        metrics::ConstraintFilter::kAll)
                     .p99),
             util::StrFormat("%.3f", fairness.jain_all)});
      }
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("expected shape: every job completes at every churn level; "
                "tail latency and rescheduling volume rise as MTBF falls; "
                "Phoenix keeps its edge under churn\n");
  }
  return 0;
}
