// Extension bench: elastic cluster lifecycle under shaped load.
//
// The paper evaluates Phoenix on a fixed fleet; real heterogeneous
// datacenters grow and shrink. This sweep runs the elasticity controller
// (src/elastic) over two load shapes — bursty (short intense episodes) and
// diurnal (long half-duty swells) — crossed with transient-pool reclamation
// pressure, for Phoenix and the comparison schedulers. The base fleet is
// sized to the trace load; the reserve pool absorbs reactive scale-ups and
// the transient pool supplies cheap-but-revocable capacity that drains and
// redispatches work when reclaimed.
//
// Reported per cell: short-job p90 queuing delay, measured utilization over
// delivered machine-seconds (the in-service integral, not the static
// universe), and the lifecycle counters — commissions, drains, reclamations,
// forced-retire redispatches, and warm-up seconds wasted on leases that
// never started a task.
//
// `--json=PATH` additionally writes every cell as machine-readable JSON.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "metrics/percentile.h"

using namespace phoenix;

namespace {

struct Cell {
  std::string scheduler;
  std::string shape;
  double reclaim_rate = 0;
  double short_p90 = 0;
  double utilization = 0;
  std::uint64_t commissions = 0;
  std::uint64_t drains = 0;
  std::uint64_t reclamations = 0;
  std::uint64_t forced_retires = 0;
  std::uint64_t redispatched = 0;
  std::uint64_t crv_shaped = 0;
  double wasted_warmup = 0;
  std::uint64_t events = 0;
  double wall = 0;
};

bench::JsonEmitter MakeEmitter(const bench::BenchOptions& o,
                               std::size_t reserve, std::size_t transient,
                               double warmup, double grace,
                               double reclaim_grace,
                               const std::vector<Cell>& cells) {
  bench::JsonEmitter emitter(
      "ext_elasticity",
      "elastic cluster lifecycle (reactive + CRV-shaped scaling, transient "
      "reclamation)");
  emitter.AddCommonConfig(o);
  emitter.config()
      .AddInt("reserve", reserve)
      .AddInt("transient", transient)
      .Add("warmup_delay_s", warmup)
      .Add("drain_grace_s", grace)
      .Add("reclaim_grace_s", reclaim_grace);
  for (const Cell& c : cells) {
    auto& cell = emitter.NewCell();
    cell.Add("scheduler", c.scheduler)
        .Add("shape", c.shape)
        .Add("reclaim_rate_per_s", c.reclaim_rate)
        .Add("short_p90_queuing_s", c.short_p90)
        .Add("utilization", c.utilization)
        .AddInt("commissions", c.commissions)
        .AddInt("drains", c.drains)
        .AddInt("reclamations", c.reclamations)
        .AddInt("forced_retires", c.forced_retires)
        .AddInt("tasks_redispatched", c.redispatched)
        .AddInt("crv_shaped_picks", c.crv_shaped)
        .Add("wasted_warmup_s", c.wasted_warmup);
    bench::AddThroughput(cell, c.events, c.wall);
  }
  return emitter;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  // Elasticity knobs, declared before the common set so `--help` leads with
  // them. 0 on the pool sizes means "derive from --nodes".
  const std::string json_path = flags.GetString("json", "");
  std::size_t reserve = static_cast<std::size_t>(flags.GetInt("reserve", 0));
  std::size_t transient =
      static_cast<std::size_t>(flags.GetInt("transient", 0));
  const double warmup = flags.GetDouble("warmup", 30.0);
  const double grace = flags.GetDouble("drain-grace", 60.0);
  const double reclaim_grace = flags.GetDouble("reclaim-grace", 15.0);
  const double target_wait = flags.GetDouble("target-wait", 5.0);
  auto o = bench::ParseBenchOptions(flags, 120, 2);
  if (reserve == 0) reserve = o.nodes / 2;
  if (transient == 0) transient = o.nodes / 4;
  bench::PrintHeader("Extension: elastic lifecycle under shaped load", o,
                     "beyond-paper: the paper's fleets are fixed-size");
  std::printf("universe: base=%zu reserve=%zu transient=%zu (warmup=%gs, "
              "drain grace=%gs, reclaim grace=%gs)\n\n",
              o.nodes, reserve, transient, warmup, grace, reclaim_grace);

  // Two shaped variants of the Google profile, from the shared preset table
  // (src/trace/generators.h). Flash-crowd: rare, intense, minute-scale
  // episodes that outrun the warm-up delay. Diurnal: a gentle half-duty
  // swell slow enough for reactive scaling to track.
  const std::vector<trace::LoadShapePreset> shapes = {
      trace::ShapeByName("flash-crowd"),
      trace::ShapeByName("diurnal"),
  };
  // Mean transient lease lifetimes of infinity, 20 min, 5 min.
  const std::vector<double> reclaim_rates = {0.0, 1.0 / 1200.0, 1.0 / 300.0};

  const auto cluster = bench::MakeCluster(o.nodes + reserve + transient,
                                          o.seed);

  std::FILE* tsv = nullptr;
  if (!o.tsv.empty()) {
    tsv = std::fopen(o.tsv.c_str(), "a");
    if (tsv != nullptr) {
      std::fseek(tsv, 0, SEEK_END);
      if (std::ftell(tsv) == 0) {
        std::fprintf(tsv,
                     "scheduler\tshape\treclaim_rate\tshort_p90\tutil\t"
                     "commissions\tdrains\treclaims\tredispatched\n");
      }
    }
  }

  std::vector<Cell> cells;
  for (const std::string sched : {"phoenix", "eagle-c", "hawk-c"}) {
    std::printf("--- %s ---\n", sched.c_str());
    util::TextTable t({"shape", "reclaim", "short p90 qdelay", "util",
                       "commissions", "drains", "reclaims", "forced",
                       "redisp", "crv picks", "wasted warmup"});
    for (const trace::LoadShapePreset& shape : shapes) {
      auto gen = trace::ProfileByName("google");
      gen.num_jobs = o.jobs;
      gen.num_workers = o.nodes;
      gen.target_load = o.load;
      gen.seed = o.seed;
      trace::ApplyLoadShape(shape, gen);
      const auto trace = trace::GenerateTrace(shape.name, gen);
      for (const double rate : reclaim_rates) {
        runner::RunOptions ro;
        ro.scheduler = sched;
        ro.config.seed = o.seed;
        ro.config.net = o.net;
        ro.config.rpc = o.rpc;
        ro.obs = o.obs;
        ro.elastic.enabled = true;
        ro.elastic.base_machines = o.nodes;
        ro.elastic.reserve_machines = reserve;
        ro.elastic.transient_machines = transient;
        ro.elastic.transient_target = transient;
        ro.elastic.warmup_delay = warmup;
        ro.elastic.drain_grace = grace;
        ro.elastic.reclaim_grace = reclaim_grace;
        ro.elastic.reclaim_rate = rate;
        ro.elastic.target_wait = target_wait;
        const runner::RepeatedRuns runs(trace, cluster, ro, o.runs);
        const double p90 = runs.MeanQueuingPercentile(
            90, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll);
        const double util = runs.MeanUtilization();
        Cell c;
        c.scheduler = sched;
        c.shape = shape.name;
        c.reclaim_rate = rate;
        c.short_p90 = p90;
        c.utilization = util;
        for (const auto& r : runs.reports()) {
          c.commissions += r.counters.elastic_commissions;
          c.drains += r.counters.elastic_drains;
          c.reclamations += r.counters.elastic_reclamations;
          c.forced_retires += r.counters.elastic_retires_forced;
          c.redispatched += r.counters.elastic_tasks_redispatched;
          c.crv_shaped += r.counters.elastic_crv_shaped_picks;
          c.wasted_warmup += r.counters.elastic_wasted_warmup_seconds;
          c.events += r.events_fired;
          c.wall += r.sim_wall_seconds;
        }
        cells.push_back(c);
        t.AddRow({shape.name,
                  rate > 0 ? util::StrFormat("1/%.0fs", 1.0 / rate) : "off",
                  util::HumanDuration(p90),
                  util::StrFormat("%.1f%%", 100 * util),
                  util::WithCommas(static_cast<std::int64_t>(c.commissions)),
                  util::WithCommas(static_cast<std::int64_t>(c.drains)),
                  util::WithCommas(static_cast<std::int64_t>(c.reclamations)),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.forced_retires)),
                  util::WithCommas(static_cast<std::int64_t>(c.redispatched)),
                  util::WithCommas(static_cast<std::int64_t>(c.crv_shaped)),
                  util::StrFormat("%.0fs", c.wasted_warmup)});
        if (tsv != nullptr) {
          std::fprintf(
              tsv, "%s\t%s\t%.6f\t%.6f\t%.4f\t%llu\t%llu\t%llu\t%llu\n",
              sched.c_str(), shape.name, rate, p90, util,
              static_cast<unsigned long long>(c.commissions),
              static_cast<unsigned long long>(c.drains),
              static_cast<unsigned long long>(c.reclamations),
              static_cast<unsigned long long>(c.redispatched));
        }
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  if (tsv != nullptr) std::fclose(tsv);
  if (!json_path.empty() &&
      !MakeEmitter(o, reserve, transient, warmup, grace, reclaim_grace, cells)
           .WriteTo(json_path)) {
    return 1;
  }
  std::printf(
      "expected shape: reclamation pressure costs tail latency (forced "
      "retires redispatch in-flight work) but never loses jobs; Phoenix's "
      "CRV-shaped scale-ups keep constrained demand supplied where the "
      "baselines pick capacity blindly\n");
  return 0;
}
