// Extension bench: the energy/latency trade under power-aware scheduling.
//
// The paper schedules a fixed, always-on fleet; datacenters pay for every
// idle watt. This sweep crosses the power policy (meter: always-on
// measurement baseline; dvfs: P-state throttling only; park: deep sleep
// only; all: both) with two load shapes — steady and diurnal (long
// half-duty swells that leave real idle troughs) — for Phoenix and Eagle-C
// at moderate load, so there is genuine idle capacity for the policies to
// harvest.
//
// Reported per cell: total joules, energy per completed task, the
// energy-delay product (joules x mean job response), short-job p90 queuing
// delay (the latency cost of sleeping capacity), park/wake/DVFS activity,
// and the fraction of machine-time spent in S3. The headline comparison is
// `park`/`all` vs `meter`: deep sleep should cut joules materially at a
// bounded short-job tail cost (wake latency, smaller awake fleet). `dvfs`
// is the free-lunch column: dispatch boosts throttled machines back to P0
// before work starts, so it thins *idle* draw at identical latency.
//
// With `--sla-mix` (default "balanced"; "off" disables) the trace carries a
// prod/batch/best-effort tenant mix and each cell additionally slices
// execution joules by SLA class — who the saved (or spent) energy actually
// served.
//
// `--json=PATH` additionally writes every cell as machine-readable JSON.
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "metrics/percentile.h"
#include "tenancy/config.h"

using namespace phoenix;

namespace {

struct Cell {
  std::string scheduler;
  std::string shape;
  std::string policy;
  double joules = 0;
  double joules_per_task = 0;
  double edp = 0;
  double short_p90 = 0;
  double sleep_fraction = 0;
  /// Mean execution joules, completed tasks, and joules-per-task per SLA
  /// class (prod / batch / best-effort), zero when --sla-mix=off.
  std::array<double, 3> class_joules{};
  std::array<std::uint64_t, 3> class_tasks{};
  std::array<double, 3> class_j_per_task{};
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t dvfs_steps = 0;
  std::uint64_t park_vetoes = 0;
  std::uint64_t events = 0;
  double wall = 0;
};

/// The tenancy bench's standing three-class tenant set, minus preemption —
/// here tenancy exists to attribute energy, not to reshuffle queues.
tenancy::TenancyConfig MakeSlaTenants() {
  tenancy::TenancyConfig tc;
  tc.tenants.push_back({"prod", tenancy::PriorityClass::kProd,
                        /*quota_share=*/0.5, /*crv_share=*/0.0,
                        /*slo_target=*/60.0});
  tc.tenants.push_back({"batch", tenancy::PriorityClass::kBatch,
                        /*quota_share=*/0.4, /*crv_share=*/0.6,
                        /*slo_target=*/0.0});
  tc.tenants.push_back({"scavenger", tenancy::PriorityClass::kBestEffort,
                        /*quota_share=*/0.0, /*crv_share=*/0.0,
                        /*slo_target=*/0.0});
  return tc;
}

power::PowerConfig MakePower(const std::string& policy,
                             const power::PowerConfig& base) {
  power::PowerConfig pc = base;
  pc.enabled = true;
  pc.policy.park = policy == "park" || policy == "all";
  pc.policy.dvfs = policy == "dvfs" || policy == "all";
  return pc;
}

bench::JsonEmitter MakeEmitter(const bench::BenchOptions& o,
                               const std::string& sla_mix,
                               const std::vector<Cell>& cells) {
  bench::JsonEmitter emitter(
      "ext_energy",
      "energy- and power-aware scheduling (S3 deep park, DVFS, wake-aware "
      "supply) vs the always-on fleet");
  emitter.AddCommonConfig(o);
  emitter.config()
      .Add("park_idle_after_s", o.power.policy.park_idle_after)
      .Add("min_active_fraction", o.power.policy.min_active_fraction)
      .Add("target_wait_s", o.power.policy.target_wait)
      .Add("wake_wait_factor", o.power.policy.wake_wait_factor)
      .Add("parked_supply_weight", o.power.policy.parked_supply_weight)
      .Add("sla_mix", sla_mix);
  static const char* kClassKeys[3] = {"prod", "batch", "best_effort"};
  for (const Cell& c : cells) {
    auto& cell = emitter.NewCell();
    cell.Add("scheduler", c.scheduler)
        .Add("shape", c.shape)
        .Add("policy", c.policy)
        .Add("joules", c.joules)
        .Add("joules_per_task", c.joules_per_task)
        .Add("energy_delay_product", c.edp)
        .Add("short_p90_queuing_s", c.short_p90)
        .Add("sleep_fraction", c.sleep_fraction);
    for (std::size_t k = 0; k < 3; ++k) {
      cell.Add(util::StrFormat("exec_joules_%s", kClassKeys[k]).c_str(),
               c.class_joules[k])
          .Add(util::StrFormat("exec_joules_per_task_%s",
                               kClassKeys[k]).c_str(),
               c.class_j_per_task[k]);
    }
    cell.AddInt("parks", c.parks)
        .AddInt("wakes", c.wakes)
        .AddInt("dvfs_steps", c.dvfs_steps)
        .AddInt("park_vetoes", c.park_vetoes);
    bench::AddThroughput(cell, c.events, c.wall);
  }
  return emitter;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string json_path = flags.GetString("json", "");
  const std::string sla_mix = flags.GetString("sla-mix", "balanced");
  auto o = bench::ParseBenchOptions(flags, 96, 2);
  if (sla_mix != "balanced" && sla_mix != "prod-heavy" && sla_mix != "off") {
    std::fprintf(stderr,
                 "--sla-mix must be balanced|prod-heavy|off (got \"%s\")\n",
                 sla_mix.c_str());
    return 1;
  }
  // The interesting regime is moderate load: a fleet sized for its peaks
  // has troughs worth sleeping through. --load still overrides.
  if (!flags.Provided("load")) o.load = 0.40;
  bench::PrintHeader("Extension: energy-aware scheduling", o,
                     "beyond-paper: the paper's fleets are always-on");

  const std::vector<trace::LoadShapePreset> shapes = {
      trace::ShapeByName("steady"),
      trace::ShapeByName("diurnal"),
  };
  const std::vector<std::string> policies = {"meter", "dvfs", "park", "all"};

  const auto cluster = bench::MakeCluster(o.nodes, o.seed);

  std::FILE* tsv = nullptr;
  if (!o.tsv.empty()) {
    tsv = std::fopen(o.tsv.c_str(), "a");
    if (tsv != nullptr) {
      std::fseek(tsv, 0, SEEK_END);
      if (std::ftell(tsv) == 0) {
        std::fprintf(tsv,
                     "scheduler\tshape\tpolicy\tjoules\tj_per_task\tedp\t"
                     "short_p90\tsleep_fraction\tparks\twakes\tdvfs\n");
      }
    }
  }

  std::vector<Cell> cells;
  for (const std::string sched : {"phoenix", "eagle-c"}) {
    std::printf("--- %s ---\n", sched.c_str());
    util::TextTable t({"shape", "policy", "joules", "J/task", "prod J/task",
                       "EDP", "short p90 qdelay", "sleep frac", "parks",
                       "wakes", "dvfs"});
    for (const trace::LoadShapePreset& shape : shapes) {
      auto gen = trace::ProfileByName("google");
      gen.num_jobs = o.jobs;
      gen.num_workers = o.nodes;
      gen.target_load = o.load;
      gen.seed = o.seed;
      trace::ApplyLoadShape(shape, gen);
      if (sla_mix == "balanced") {
        gen.tenant_weights = {1.0, 1.0, 1.0};
      } else if (sla_mix == "prod-heavy") {
        gen.tenant_weights = {3.0, 1.0, 1.0};
      }
      const auto trace = trace::GenerateTrace(shape.name, gen);
      for (const std::string& policy : policies) {
        runner::RunOptions ro;
        ro.scheduler = sched;
        ro.config.seed = o.seed;
        ro.config.net = o.net;
        ro.config.rpc = o.rpc;
        if (sla_mix != "off") ro.config.tenancy = MakeSlaTenants();
        ro.obs = o.obs;
        ro.power = MakePower(policy, o.power);
        const runner::RepeatedRuns runs(trace, cluster, ro, o.runs);
        Cell c;
        c.scheduler = sched;
        c.shape = shape.name;
        c.policy = policy;
        c.short_p90 = runs.MeanQueuingPercentile(
            90, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll);
        double sleep_frac_sum = 0;
        for (const auto& r : runs.reports()) {
          c.joules += r.total_joules;
          c.joules_per_task += r.energy_per_task;
          c.edp += r.energy_delay_product;
          for (std::size_t k = 0; k < 3; ++k) {
            c.class_joules[k] += r.class_exec_joules[k];
            c.class_tasks[k] += r.class_tasks[k];
          }
          sleep_frac_sum +=
              r.makespan > 0
                  ? r.sleep_machine_seconds /
                        (static_cast<double>(r.num_workers) * r.makespan)
                  : 0;
          c.parks += r.counters.power_parks;
          c.wakes += r.counters.power_wakes;
          c.dvfs_steps +=
              r.counters.power_dvfs_raises + r.counters.power_dvfs_lowers;
          c.park_vetoes += r.counters.power_park_vetoes_coverage +
                           r.counters.power_park_vetoes_floor;
          c.events += r.events_fired;
          c.wall += r.sim_wall_seconds;
        }
        const auto n = static_cast<double>(runs.reports().size());
        c.joules /= n;
        c.joules_per_task /= n;
        c.edp /= n;
        for (std::size_t k = 0; k < 3; ++k) {
          // Ratio over the summed runs first, then reduce joules to a mean.
          c.class_j_per_task[k] =
              c.class_tasks[k] > 0
                  ? c.class_joules[k] / static_cast<double>(c.class_tasks[k])
                  : 0.0;
          c.class_joules[k] /= n;
        }
        c.sleep_fraction = sleep_frac_sum / n;
        const double prod_j_per_task = c.class_j_per_task[0];
        cells.push_back(c);
        t.AddRow({shape.name, policy, util::StrFormat("%.3g", c.joules),
                  util::StrFormat("%.1f", c.joules_per_task),
                  util::StrFormat("%.1f", prod_j_per_task),
                  util::StrFormat("%.3g", c.edp),
                  util::HumanDuration(c.short_p90),
                  util::StrFormat("%.1f%%", 100 * c.sleep_fraction),
                  util::WithCommas(static_cast<std::int64_t>(c.parks)),
                  util::WithCommas(static_cast<std::int64_t>(c.wakes)),
                  util::WithCommas(static_cast<std::int64_t>(c.dvfs_steps))});
        if (tsv != nullptr) {
          std::fprintf(tsv,
                       "%s\t%s\t%s\t%.6g\t%.6g\t%.6g\t%.6f\t%.4f\t%llu\t%llu"
                       "\t%llu\n",
                       sched.c_str(), shape.name, policy.c_str(), c.joules,
                       c.joules_per_task, c.edp, c.short_p90,
                       c.sleep_fraction,
                       static_cast<unsigned long long>(c.parks),
                       static_cast<unsigned long long>(c.wakes),
                       static_cast<unsigned long long>(c.dvfs_steps));
        }
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  if (tsv != nullptr) std::fclose(tsv);
  if (!json_path.empty() &&
      !MakeEmitter(o, sla_mix, cells).WriteTo(json_path)) {
    return 1;
  }
  std::printf(
      "expected shape: `park` and `all` cut joules materially below the "
      "always-on `meter` baseline at a bounded short-job p90 cost (roughly "
      "one S3 wake latency); `dvfs` trims idle draw at identical latency — "
      "dispatch boosts a throttled machine back to P0 before work starts\n");
  return 0;
}
