// Figure 10: Phoenix normalized to Hawk-C, Google short jobs, across the
// utilization sweep. The paper reports Phoenix taking 21 % of Hawk-C's p90
// (4.7x) and 18 % of its p99 (5.5x) at 86 % utilization, easing to
// 80 %/76 % at 40 % utilization.
#include <cstdio>

#include "bench/sweep.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 2);
  bench::PrintHeader("Figure 10: Phoenix vs Hawk-C, Google short jobs", o,
                     "Fig 10");
  bench::RunNormalizedSweep("google", "phoenix", "hawk-c",
                            metrics::ClassFilter::kShort, o);
  std::printf("paper shape: normalized p90 ~0.21 and p99 ~0.18 at peak "
              "utilization, rising toward ~0.8 at low utilization\n");
  return 0;
}
