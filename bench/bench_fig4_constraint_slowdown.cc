// Figure 4: short-job response times of constrained jobs relative to
// unconstrained jobs (p50/p90/p99) under Eagle-C, for all three traces.
//
// The paper normalizes unconstrained to constrained response times and
// reports a uniform ~1.7x inflation at the 99th percentile.
#include <cstdio>

#include "bench/common.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader(
      "Figure 4: constrained vs unconstrained short-job response (Eagle-C)",
      o, "Fig 4a/4b/4c");

  util::TextTable table({"Trace", "p50 ratio", "p90 ratio", "p99 ratio",
                         "constrained p99", "unconstrained p99"});
  for (const std::string profile : {"yahoo", "cloudera", "google"}) {
    auto opts = o;
    if (profile == "yahoo") {
      opts.nodes = std::max<std::size_t>(o.nodes / 3, 8);
      opts.jobs = 50 * opts.nodes;
    }
    const auto trace = bench::MakeTrace(profile, opts);
    const auto cluster = bench::MakeCluster(opts.nodes, opts.seed);
    const auto runs = bench::Run("eagle-c", trace, cluster, opts);

    auto at = [&](double p, metrics::ConstraintFilter kf) {
      return runs.MeanResponsePercentile(p, metrics::ClassFilter::kShort, kf);
    };
    const double c50 = at(50, metrics::ConstraintFilter::kConstrained);
    const double u50 = at(50, metrics::ConstraintFilter::kUnconstrained);
    const double c90 = at(90, metrics::ConstraintFilter::kConstrained);
    const double u90 = at(90, metrics::ConstraintFilter::kUnconstrained);
    const double c99 = at(99, metrics::ConstraintFilter::kConstrained);
    const double u99 = at(99, metrics::ConstraintFilter::kUnconstrained);
    table.AddRow({profile, util::StrFormat("%.2fx", c50 / u50),
                  util::StrFormat("%.2fx", c90 / u90),
                  util::StrFormat("%.2fx", c99 / u99),
                  util::HumanDuration(c99), util::HumanDuration(u99)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape: constrained short jobs run ~1.7x slower at p99 "
              "uniformly across traces\n");
  return 0;
}
