// Shared node-count sweep for Figures 7, 8, 10 and 11.
//
// The paper sweeps the fleet from 15,000 to 19,000 workers against a fixed
// trace, so average utilization falls (86 % -> 43 %) and the normalized
// response-time ratio converges toward 1. We replay the same experiment:
// one trace calibrated to the base fleet, replayed on scaled fleets.
//
// The (treatment, baseline) x fleet-multiplier grid is embarrassingly
// parallel, so cells run concurrently under the --threads budget. Cells
// write into slots indexed by grid position, and the table/TSV are emitted
// only after the join, in grid order — printed output and TSV rows are
// byte-identical to a serial run (and rows can never interleave mid-line,
// which the old write-as-you-go loop would have allowed under concurrency).
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "metrics/percentile.h"

namespace phoenix::bench {

inline const std::vector<double>& SweepMultipliers() {
  static const std::vector<double> m = {1.0, 1.15, 1.35, 1.6, 2.0};
  return m;
}

/// Runs `treatment` and `baseline` over `profile`'s trace across the fleet
/// sweep and prints percentiles of `cf` jobs normalized to the baseline
/// (lower is better — the paper's bar height).
inline void RunNormalizedSweep(const std::string& profile,
                               const std::string& treatment,
                               const std::string& baseline,
                               metrics::ClassFilter cf,
                               const BenchOptions& o) {
  auto opts = o;
  if (profile == "yahoo") {
    opts.nodes = std::max<std::size_t>(o.nodes / 3, 8);
    opts.jobs = 50 * opts.nodes;
  }
  const auto trace = MakeTrace(profile, opts);
  std::printf("--- %s trace (base fleet %zu workers) ---\n", profile.c_str(),
              opts.nodes);

  // One cluster per multiplier, shared (const) by that multiplier's two
  // cells; one result slot per (multiplier, scheduler) cell.
  const auto& mults = SweepMultipliers();
  std::vector<std::size_t> fleet_sizes;
  std::vector<cluster::Cluster> clusters;
  fleet_sizes.reserve(mults.size());
  clusters.reserve(mults.size());
  for (const double mult : mults) {
    fleet_sizes.push_back(
        static_cast<std::size_t>(static_cast<double>(opts.nodes) * mult));
    clusters.push_back(MakeCluster(fleet_sizes.back(), opts.seed));
  }
  if (runner::ExperimentThreads() > 1) {
    for (const auto& cl : clusters) runner::PrewarmClusterForTrace(cl, trace);
  }
  std::vector<std::optional<runner::RepeatedRuns>> cells(2 * mults.size());
  runner::ParallelExperimentLoop(cells.size(), [&](std::size_t i) {
    const auto& scheduler = (i % 2 == 0) ? treatment : baseline;
    cells[i].emplace(Run(scheduler, trace, clusters[i / 2], opts));
  });

  // Join done: emit the table and TSV serially, in grid order.
  std::FILE* tsv = nullptr;
  if (!o.tsv.empty()) {
    tsv = std::fopen(o.tsv.c_str(), "a");
    if (tsv != nullptr) {
      // Emit the header only for a fresh file (ftell on an append stream is
      // unreliable before the first write; seek to the real end first).
      std::fseek(tsv, 0, SEEK_END);
      if (std::ftell(tsv) == 0) {
        std::fprintf(tsv,
                     "# series\tfleet\tutil\tp50_norm\tp90_norm\tp99_norm\t"
                     "p99_treatment_s\tp99_baseline_s\n");
      }
    }
  }
  util::TextTable table({"fleet", "~paper nodes", "avg util",
                         "p50 (norm)", "p90 (norm)", "p99 (norm)",
                         "p99 " + treatment, "p99 " + baseline});
  for (std::size_t m = 0; m < mults.size(); ++m) {
    const std::size_t nodes = fleet_sizes[m];
    const auto& t = *cells[2 * m];
    const auto& b = *cells[2 * m + 1];
    auto norm = [&](double p) {
      const double tv =
          t.MeanResponsePercentile(p, cf, metrics::ConstraintFilter::kAll);
      const double bv =
          b.MeanResponsePercentile(p, cf, metrics::ConstraintFilter::kAll);
      return bv > 0 ? tv / bv : 0.0;
    };
    const double util =
        (t.MeanUtilization() + b.MeanUtilization()) / 2;
    const double t99 =
        t.MeanResponsePercentile(99, cf, metrics::ConstraintFilter::kAll);
    const double b99 =
        b.MeanResponsePercentile(99, cf, metrics::ConstraintFilter::kAll);
    table.AddRow(
        {util::WithCommas(static_cast<std::int64_t>(nodes)),
         util::WithCommas(static_cast<std::int64_t>(15000 * mults[m])),
         util::StrFormat("%.0f%%", 100 * util),
         util::StrFormat("%.2f", norm(50)), util::StrFormat("%.2f", norm(90)),
         util::StrFormat("%.2f", norm(99)), util::HumanDuration(t99),
         util::HumanDuration(b99)});
    if (tsv != nullptr) {
      std::fprintf(tsv, "%s-%s-vs-%s\t%zu\t%.4f\t%.4f\t%.4f\t%.4f\t%.2f\t%.2f\n",
                   profile.c_str(), treatment.c_str(), baseline.c_str(), nodes,
                   util, norm(50), norm(90), norm(99), t99, b99);
    }
  }
  if (tsv != nullptr) std::fclose(tsv);
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace phoenix::bench
