// Figure 11: Phoenix normalized to Sparrow-C, Google short jobs, across the
// utilization sweep. Sparrow-C has no long/short split, so short tasks
// suffer head-of-line blocking behind long ones; the paper reports Phoenix
// taking 48 % of Sparrow-C's p50 at 86 % utilization.
#include <cstdio>

#include "bench/sweep.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 2);
  bench::PrintHeader("Figure 11: Phoenix vs Sparrow-C, Google short jobs", o,
                     "Fig 11");
  bench::RunNormalizedSweep("google", "phoenix", "sparrow-c",
                            metrics::ClassFilter::kShort, o);
  std::printf("paper shape: Phoenix well below 1.0 at every percentile under "
              "load (median gains are the largest because Sparrow-C's "
              "head-of-line blocking hits the median hardest)\n");
  return 0;
}
