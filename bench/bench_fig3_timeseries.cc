// Figure 3: Google trace executed under Eagle-C — queuing delays of
// constrained vs unconstrained jobs over time.
//
// Buckets job queuing delays by submit time and prints the two series
// (plus an ASCII sketch), showing how constrained-job delay spikes during
// bursts cascade into subsequent unconstrained jobs.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "metrics/timeseries.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader("Figure 3: queuing delay over time (Eagle-C, Google)", o,
                     "Fig 3");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  const auto runs = bench::Run("eagle-c", trace, cluster, o);
  const auto& report = runs.reports()[0];

  const double horizon = trace.ComputeStats().horizon;
  constexpr std::size_t kBuckets = 24;
  metrics::TimeSeries constrained(horizon, kBuckets);
  metrics::TimeSeries unconstrained(horizon, kBuckets);
  for (const auto& job : report.jobs) {
    (job.constrained ? constrained : unconstrained)
        .Add(job.submit, job.queuing_delay);
  }

  double peak = 1e-9;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    peak = std::max({peak, constrained.bucket_mean(b),
                     unconstrained.bucket_mean(b)});
  }

  util::TextTable table(
      {"t (sim)", "constrained mean delay", "unconstrained mean delay",
       "constrained sketch"});
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double c = constrained.bucket_mean(b);
    const double u = unconstrained.bucket_mean(b);
    const auto bar = static_cast<std::size_t>(c / peak * 30);
    table.AddRow({util::HumanDuration(constrained.bucket_time(b)),
                  util::StrFormat("%.1fs", c), util::StrFormat("%.1fs", u),
                  std::string(bar, '#')});
  }
  std::printf("%s\n", table.ToString().c_str());

  double csum = 0, usum = 0;
  std::size_t cb = 0, ub = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (constrained.bucket_count(b)) csum += constrained.bucket_mean(b), ++cb;
    if (unconstrained.bucket_count(b)) usum += unconstrained.bucket_mean(b), ++ub;
  }
  std::printf("mean of bucket means: constrained %.1fs, unconstrained %.1fs "
              "(ratio %.2fx)\n",
              csum / std::max<std::size_t>(cb, 1),
              usum / std::max<std::size_t>(ub, 1),
              (csum / std::max<std::size_t>(cb, 1)) /
                  std::max(usum / std::max<std::size_t>(ub, 1), 1e-9));
  std::printf("paper shape: constrained delay spikes during arrival peaks "
              "and stays above the unconstrained series\n");
  return 0;
}
