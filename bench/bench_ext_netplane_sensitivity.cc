// Extension bench: control-plane sensitivity of probe-based scheduling.
//
// The paper assumes a fixed 0.5 ms control-plane transit and lossless
// delivery. This sweep varies both — one-way latency x message drop rate,
// with the RPC retry layer on — and reports the short-job p90 *queuing
// delay* slowdown against the ideal cell (nominal latency, zero loss).
// Queuing delay is the metric that contains the control plane: every short
// task pays probe transit + a late-binding fetch round trip before service,
// so it resolves millisecond transits and timeout-priced drops that
// end-to-end response (dominated by service time and queueing behind long
// work at high load) averages away. The net/rpc counter columns show the
// retry traffic buying the zero-lost-jobs guarantee.
//
// Default --load is below the paper sweeps' 0.85: at deep congestion,
// seed-to-seed queueing noise is the same order as the control-plane
// effect; a moderately loaded fleet isolates it.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "metrics/percentile.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  // Multi-seed by default: single-run queueing noise is the same order as
  // the control-plane effect under study, so cells are seed-averaged.
  auto o = bench::ParseBenchOptions(flags, 200, 3);
  if (!flags.Provided("load")) o.load = 0.5;
  bench::PrintHeader("Extension: control-plane latency/loss sensitivity", o,
                     "paper §V-A assumption (0.5 ms lossless control plane)");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  // The latency axis spans datacenter-normal (the paper's 0.5 ms) to
  // degraded-WAN scale: the interesting question is where the control plane
  // *starts* to show against seconds-scale queueing, and the answer — not
  // until transit approaches task-duration scale — is what justifies the
  // paper treating it as a constant.
  const std::vector<double> latencies = {0.5 * sim::kMillisecond,
                                         50.0 * sim::kMillisecond,
                                         250.0 * sim::kMillisecond};
  const std::vector<double> drops = {0.0, 0.01, 0.05, 0.10};

  std::FILE* tsv = nullptr;
  if (!o.tsv.empty()) {
    tsv = std::fopen(o.tsv.c_str(), "a");
    if (tsv != nullptr) {
      std::fseek(tsv, 0, SEEK_END);
      if (std::ftell(tsv) == 0) {
        std::fprintf(tsv,
                     "scheduler\tlatency_ms\tdrop\tshort_p90\tslowdown\t"
                     "retries\tdropped\tfailures\n");
      }
    }
  }

  for (const std::string sched : {"phoenix", "eagle-c"}) {
    std::printf("--- %s ---\n", sched.c_str());
    util::TextTable t({"one-way", "drop", "short p90 qdelay", "slowdown",
                       "sent", "dropped", "retries", "rpc fails"});
    double baseline = 0;
    for (const double latency : latencies) {
      for (const double drop : drops) {
        runner::RunOptions ro;
        ro.scheduler = sched;
        ro.config.seed = o.seed;
        ro.config.net = o.net;
        ro.config.rpc = o.rpc;
        ro.config.net.one_way = latency;
        ro.config.net.drop_rate = drop;
        // Latency spread only matters once chaos is on; keep the ideal cell
        // on the byte-identical fast path so the baseline is the paper's.
        if (drop > 0 && ro.config.net.model == net::LatencyModel::kConstant) {
          ro.config.net.model = net::LatencyModel::kLognormal;
        }
        const runner::RepeatedRuns runs(trace, cluster, ro, o.runs);
        const double p90 = runs.MeanQueuingPercentile(
            90, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll);
        std::uint64_t sent = 0, dropped = 0, retries = 0, failures = 0;
        for (const auto& r : runs.reports()) {
          sent += r.counters.net_messages_sent;
          dropped += r.counters.net_messages_dropped;
          retries += r.counters.rpc_retries;
          failures += r.counters.rpc_failures;
        }
        if (baseline == 0) baseline = p90;  // first cell: nominal, lossless
        const double slowdown = p90 / baseline;
        t.AddRow({util::StrFormat("%.1fms", latency / sim::kMillisecond),
                  util::StrFormat("%.0f%%", 100 * drop),
                  util::HumanDuration(p90),
                  util::StrFormat("%.2fx", slowdown),
                  util::WithCommas(static_cast<std::int64_t>(sent)),
                  util::WithCommas(static_cast<std::int64_t>(dropped)),
                  util::WithCommas(static_cast<std::int64_t>(retries)),
                  util::WithCommas(static_cast<std::int64_t>(failures))});
        if (tsv != nullptr) {
          std::fprintf(tsv, "%s\t%.3f\t%.3f\t%.6f\t%.4f\t%llu\t%llu\t%llu\n",
                       sched.c_str(), latency / sim::kMillisecond, drop, p90,
                       slowdown, static_cast<unsigned long long>(retries),
                       static_cast<unsigned long long>(dropped),
                       static_cast<unsigned long long>(failures));
        }
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  if (tsv != nullptr) std::fclose(tsv);
  std::printf(
      "expected shape: queuing-delay slowdown grows along both axes — "
      "latency multiplies the per-task transit floor, drops add "
      "timeout-priced retries to the tail — and jobs are never lost, only "
      "delayed\n");
  return 0;
}
