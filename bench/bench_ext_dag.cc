// Extension bench: DAG workloads and deadline/SLA scheduling (src/workflow).
//
// The paper's jobs are bags of independent tasks; production analytics jobs
// are DAGs with precedence edges and latency SLAs. This sweep overlays a DAG
// shape on the trace's multi-task jobs — flat (no edges, the pre-DAG model),
// chain (strict pipeline), fanout (source barrier), diamond (fork-join) —
// and crosses it with the deadline policy (off vs EDF tie-break over
// SLA-class deadlines) for Phoenix and Eagle-C.
//
// Reported per cell: short-job p90 queuing delay, the DAG counters (DAG
// jobs, task releases), and with `--deadline` the per-SLA-class deadline
// attainment plus the miss/promotion counters. Deadlines are assigned from
// the tenancy priority rank (2x/4x/8x the expected critical path for
// prod/batch/best-effort); batch is the binding class — prod jobs are
// short and promoted, best-effort holds the loosest budget.
//
// `--json=PATH` additionally writes every cell as machine-readable JSON
// (committed as BENCH_dag.json).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "metrics/percentile.h"

using namespace phoenix;

namespace {

struct Cell {
  std::string scheduler;
  std::string shape;
  bool deadline = false;
  double short_p90 = 0;
  double attain[3] = {1.0, 1.0, 1.0};
  metrics::SchedulerCounters counters;
  std::uint64_t events = 0;
  double wall = 0;
};

bench::JsonEmitter MakeEmitter(const bench::BenchOptions& o,
                               const std::vector<Cell>& cells) {
  bench::JsonEmitter emitter(
      "ext_dag",
      "DAG workloads and deadline/SLA scheduling: precedence-aware dispatch "
      "in critical-path order, EDF tie-break over SLA-class deadlines "
      "(dag shape x deadline policy x scheduler)");
  emitter.AddCommonConfig(o);
  emitter.config()
      .Add("audit", o.obs.audit)
      .Add("dag_fraction", o.dag_fraction);
  for (const Cell& c : cells) {
    auto& cell = emitter.NewCell();
    cell.Add("scheduler", c.scheduler)
        .Add("dag_shape", c.shape)
        .Add("deadline", c.deadline)
        .Add("short_p90_queuing_s", c.short_p90)
        .AddInt("dag_jobs", c.counters.dag_jobs)
        .AddInt("dag_tasks_released", c.counters.dag_tasks_released)
        .AddInt("deadline_jobs", c.counters.deadline_jobs)
        .AddInt("deadline_misses", c.counters.deadline_misses)
        .AddInt("deadline_promotions", c.counters.deadline_promotions)
        .Add("attain_prod", c.attain[0])
        .Add("attain_batch", c.attain[1])
        .Add("attain_best_effort", c.attain[2]);
    bench::AddThroughput(cell, c.events, c.wall);
  }
  return emitter;
}

std::string AttainLabel(const Cell& c) {
  if (!c.deadline) return "-";
  return util::StrFormat("%.0f%%/%.0f%%/%.0f%%", 100 * c.attain[0],
                         100 * c.attain[1], 100 * c.attain[2]);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string json_path = flags.GetString("json", "");
  auto o = bench::ParseBenchOptions(flags, 96, 2);
  bench::PrintHeader("Extension: DAG workloads and deadline scheduling", o,
                     "beyond-paper: the paper's jobs are independent tasks");
  std::printf("dag: %.0f%% of multi-task jobs tagged per shape; deadlines "
              "2x/4x/8x expected critical path (prod/batch/best-effort)\n\n",
              100 * o.dag_fraction);

  const std::vector<std::string> shapes = {"flat", "chain", "fanout",
                                           "diamond"};

  const auto cluster = bench::MakeCluster(o.nodes, o.seed);

  std::FILE* tsv = nullptr;
  if (!o.tsv.empty()) {
    tsv = std::fopen(o.tsv.c_str(), "a");
    if (tsv != nullptr) {
      std::fseek(tsv, 0, SEEK_END);
      if (std::ftell(tsv) == 0) {
        std::fprintf(tsv,
                     "scheduler\tshape\tdeadline\tshort_p90\tdag_jobs\t"
                     "released\tmisses\tpromotions\n");
      }
    }
  }

  std::vector<Cell> cells;
  for (const std::string sched : {"phoenix", "eagle-c"}) {
    std::printf("--- %s ---\n", sched.c_str());
    util::TextTable t({"shape", "deadline", "short p90 qdelay", "dag jobs",
                       "released", "misses", "promotions",
                       "attain prod/batch/be"});
    for (const std::string& shape : shapes) {
      for (const bool deadline : {false, true}) {
        auto po = o;
        po.workflow.dag = shape != "flat";
        po.workflow.deadline = deadline;
        if (po.workflow.dag) po.dag_shape = shape;
        const auto trace = bench::MakeTrace("google", po);
        const auto runs = bench::Run(sched, trace, cluster, po);
        Cell c;
        c.scheduler = sched;
        c.shape = shape;
        c.deadline = deadline;
        c.counters = runner::AggregateCounters(runs.reports());
        c.short_p90 = runs.MeanQueuingPercentile(
            90, metrics::ClassFilter::kShort,
            metrics::ConstraintFilter::kAll);
        std::uint64_t class_jobs[3] = {0, 0, 0};
        std::uint64_t class_attained[3] = {0, 0, 0};
        for (const auto& r : runs.reports()) {
          c.events += r.events_fired;
          c.wall += r.sim_wall_seconds;
          for (std::size_t rank = 0; rank < 3; ++rank) {
            class_jobs[rank] += r.class_deadline_jobs[rank];
            class_attained[rank] += r.class_deadline_attained[rank];
          }
        }
        for (std::size_t rank = 0; rank < 3; ++rank) {
          c.attain[rank] =
              class_jobs[rank] == 0
                  ? 1.0
                  : static_cast<double>(class_attained[rank]) /
                        static_cast<double>(class_jobs[rank]);
        }
        cells.push_back(c);
        t.AddRow({shape, deadline ? "edf" : "off",
                  util::HumanDuration(c.short_p90),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.counters.dag_jobs)),
                  util::WithCommas(static_cast<std::int64_t>(
                      c.counters.dag_tasks_released)),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.counters.deadline_misses)),
                  util::WithCommas(static_cast<std::int64_t>(
                      c.counters.deadline_promotions)),
                  AttainLabel(c)});
        if (tsv != nullptr) {
          std::fprintf(
              tsv, "%s\t%s\t%d\t%.6f\t%llu\t%llu\t%llu\t%llu\n",
              sched.c_str(), shape.c_str(), deadline ? 1 : 0, c.short_p90,
              static_cast<unsigned long long>(c.counters.dag_jobs),
              static_cast<unsigned long long>(c.counters.dag_tasks_released),
              static_cast<unsigned long long>(c.counters.deadline_misses),
              static_cast<unsigned long long>(
                  c.counters.deadline_promotions));
        }
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  if (tsv != nullptr) std::fclose(tsv);
  if (!json_path.empty() && !MakeEmitter(o, cells).WriteTo(json_path)) {
    return 1;
  }
  std::printf(
      "expected shape: DAG jobs release tasks wave by wave instead of all "
      "at arrival — a chain trickles one task per completion (smooth "
      "queues, p90 closest to flat), while fanout and diamond dump a whole "
      "wave when their barrier clears (bursty queues, highest p90); with "
      "the EDF tie-break prod and best-effort attain near-fully (short "
      "promoted jobs, loosest budget respectively) and batch carries the "
      "misses — its mid-tier budget binds against the longest jobs\n");
  return 0;
}
