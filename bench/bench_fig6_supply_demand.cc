// Figure 6: constraints supply/demand distribution.
//
// For k = 1..6 constraints, prints the percentage of (constrained) jobs
// demanding exactly k constraints and the mean percentage of worker nodes
// able to satisfy the k-constraint sets jobs actually request.
#include <cstdio>

#include "bench/common.h"
#include "trace/characterize.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 2000, 1);
  bench::PrintHeader("Figure 6: constraints supply/demand distribution", o,
                     "Fig 6 (Google trace)");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  const auto usage = trace::CharacterizeConstraints(trace);
  const auto supply = trace::SupplyCurve(trace, cluster);

  util::TextTable table({"# Constraints", "Demand of jobs (%)",
                         "Supply of nodes (%)", "demand sketch",
                         "supply sketch"});
  for (std::size_t k = 0; k < cluster::kMaxConstraintsPerTask; ++k) {
    table.AddRow({util::StrFormat("%zu", k + 1),
                  util::StrFormat("%.1f", usage.demand_pct[k]),
                  util::StrFormat("%.1f", supply[k]),
                  std::string(static_cast<std::size_t>(usage.demand_pct[k]), '#'),
                  std::string(static_cast<std::size_t>(supply[k]), '*')});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("constrained jobs: %llu, unconstrained: %llu\n",
              static_cast<unsigned long long>(usage.constrained_jobs),
              static_cast<unsigned long long>(usage.unconstrained_jobs));
  std::printf("paper shape: demand peaks at 2 constraints (~33%%); supply "
              "declines with k (~12%% at 2, ~5%% at 6); ~80%% of jobs ask "
              "<= 3 constraints\n");
  return 0;
}
