// Figure 2: CDF of job queuing times for the Yahoo (2a) and Cloudera (2b)
// traces with task placement constraints, under Hawk-C, Eagle-C, Yacc-D and
// the unconstrained Baseline.
//
// Prints one CDF series per scheduler (quantile -> queuing delay), matching
// the figure's axes (x = job queuing time in seconds, y = CDF).
#include <cstdio>

#include "bench/common.h"
#include "metrics/percentile.h"

using namespace phoenix;

namespace {

void PrintTraceCdf(const std::string& profile, const bench::BenchOptions& o) {
  auto opts = o;
  if (profile == "yahoo") {
    opts.nodes = std::max<std::size_t>(o.nodes / 3, 8);
    opts.jobs = 50 * opts.nodes;
  }
  const auto constrained = bench::MakeTrace(profile, opts);
  const auto baseline = constrained.WithoutConstraints();
  const auto cluster = bench::MakeCluster(opts.nodes, opts.seed);

  std::printf("--- %s trace with constraints (%zu nodes) ---\n",
              profile.c_str(), opts.nodes);
  const double quantiles[] = {10, 25, 50, 75, 90, 95, 99};
  util::TextTable table({"CDF", "Hawk-C", "Eagle-C", "Yacc-D", "Baseline"});

  std::map<std::string, std::vector<double>> delays;
  for (const std::string sched : {"hawk-c", "eagle-c", "yacc-d"}) {
    const auto runs = bench::Run(sched, constrained, cluster, opts);
    delays[sched] = runs.reports()[0].QueuingDelays(
        metrics::ClassFilter::kAll, metrics::ConstraintFilter::kAll);
  }
  {
    const auto runs = bench::Run("eagle-c", baseline, cluster, opts);
    delays["baseline"] = runs.reports()[0].QueuingDelays(
        metrics::ClassFilter::kAll, metrics::ConstraintFilter::kAll);
  }
  for (const double q : quantiles) {
    table.AddRow(
        {util::StrFormat("%.2f", q / 100.0),
         util::StrFormat("%.1fs", metrics::Percentile(delays["hawk-c"], q)),
         util::StrFormat("%.1fs", metrics::Percentile(delays["eagle-c"], q)),
         util::StrFormat("%.1fs", metrics::Percentile(delays["yacc-d"], q)),
         util::StrFormat("%.1fs", metrics::Percentile(delays["baseline"], q))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader("Figure 2: job queuing time CDFs", o,
                     "Fig 2a (Yahoo), Fig 2b (Cloudera)");
  PrintTraceCdf("yahoo", o);
  PrintTraceCdf("cloudera", o);
  std::printf("paper shape: Baseline (no constraints) queues least; Hawk-C "
              "queues most; Eagle-C and Yacc-D sit 2-2.5x above Baseline in "
              "the tail\n");
  return 0;
}
