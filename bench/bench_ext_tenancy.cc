// Extension bench: multi-tenant SLO scheduling (src/tenancy).
//
// The paper's evaluation is single-tenant; production constrained clusters
// are shared. This sweep runs three tenants — prod (quota + short-job SLO),
// batch (quota + CRV-share cap), best-effort (scavenger) — over the Google
// profile, crossing tenant mix skew (balanced vs prod-heavy) with the
// preemption policy (on/off) for Phoenix and Eagle-C.
//
// Reported per cell: per-class p90 queuing delay (does preemption actually
// buy prod latency, and what does best-effort pay), prod SLO attainment,
// admission outcomes (downgrades / quota rejects), preemption counts with
// the starvation-guard / cap blocks, and the Jain fairness index over
// quota-normalized tenant usage.
//
// `--json=PATH` additionally writes every cell as machine-readable JSON
// (committed as BENCH_tenancy.json).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "metrics/report.h"
#include "tenancy/config.h"

using namespace phoenix;

namespace {

struct Mix {
  const char* name;
  std::vector<double> weights;  // prod, batch, best-effort
};

struct Cell {
  std::string scheduler;
  std::string mix;
  bool preemption = false;
  double prod_p90 = 0;
  double batch_p90 = 0;
  double be_p90 = 0;
  double slo_attainment = 0;
  double jain = 0;
  metrics::SchedulerCounters counters;
  std::uint64_t events = 0;
  double wall = 0;
};

tenancy::TenancyConfig MakeTenants(bool preemption, double slo_target) {
  tenancy::TenancyConfig tc;
  tc.preemption = preemption;
  tc.tenants.push_back({"prod", tenancy::PriorityClass::kProd,
                        /*quota_share=*/0.5, /*crv_share=*/0.0, slo_target});
  tc.tenants.push_back({"batch", tenancy::PriorityClass::kBatch,
                        /*quota_share=*/0.4, /*crv_share=*/0.6,
                        /*slo_target=*/0.0});
  tc.tenants.push_back({"scavenger", tenancy::PriorityClass::kBestEffort,
                        /*quota_share=*/0.0, /*crv_share=*/0.0,
                        /*slo_target=*/0.0});
  return tc;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string json_path = flags.GetString("json", "");
  const double slo_target = flags.GetDouble("slo", 60.0);
  auto o = bench::ParseBenchOptions(flags, 120, 2);
  bench::PrintHeader("Extension: multi-tenant SLO scheduling", o,
                     "beyond-paper: the paper's clusters are single-tenant");
  std::printf("tenants: prod (quota 50%%, SLO %gs) / batch (quota 40%%, CRV "
              "share 60%%) / scavenger (best-effort)\n\n",
              slo_target);

  const std::vector<Mix> mixes = {
      {"balanced", {1.0, 1.0, 1.0}},
      {"prod-heavy", {3.0, 1.0, 1.0}},
  };

  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  std::vector<Cell> cells;
  for (const std::string sched : {"phoenix", "eagle-c"}) {
    std::printf("--- %s ---\n", sched.c_str());
    util::TextTable t({"mix", "preempt", "prod p90", "batch p90", "b-e p90",
                       "SLO att.", "preempts", "guard/cap", "downgrades",
                       "rejects", "jain"});
    for (const Mix& mix : mixes) {
      auto gen = trace::ProfileByName("google");
      gen.num_jobs = o.jobs;
      gen.num_workers = o.nodes;
      gen.target_load = o.load;
      gen.seed = o.seed;
      gen.tenant_weights = mix.weights;
      const auto trace = trace::GenerateTrace(mix.name, gen);
      for (const bool preemption : {false, true}) {
        runner::RunOptions ro;
        ro.scheduler = sched;
        ro.config.seed = o.seed;
        ro.config.net = o.net;
        ro.config.rpc = o.rpc;
        ro.config.tenancy = MakeTenants(preemption, slo_target);
        ro.obs = o.obs;
        const runner::RepeatedRuns runs(trace, cluster, ro, o.runs);
        Cell c;
        c.scheduler = sched;
        c.mix = mix.name;
        c.preemption = preemption;
        c.counters = runner::AggregateCounters(runs.reports());
        const std::size_t n = runs.reports().size();
        std::uint64_t slo_jobs = 0;
        std::uint64_t slo_attained = 0;
        for (const auto& r : runs.reports()) {
          c.prod_p90 += r.tenants[0].p90_queuing / static_cast<double>(n);
          c.batch_p90 += r.tenants[1].p90_queuing / static_cast<double>(n);
          c.be_p90 += r.tenants[2].p90_queuing / static_cast<double>(n);
          c.jain += r.tenant_fairness_jain / static_cast<double>(n);
          slo_jobs += r.tenants[0].slo_jobs;
          slo_attained += r.tenants[0].slo_attained;
          c.events += r.events_fired;
          c.wall += r.sim_wall_seconds;
        }
        c.slo_attainment = slo_jobs == 0 ? 1.0
                                         : static_cast<double>(slo_attained) /
                                               static_cast<double>(slo_jobs);
        cells.push_back(c);
        t.AddRow({mix.name, preemption ? "on" : "off",
                  util::HumanDuration(c.prod_p90),
                  util::HumanDuration(c.batch_p90),
                  util::HumanDuration(c.be_p90),
                  util::StrFormat("%.1f%%", 100 * c.slo_attainment),
                  util::WithCommas(static_cast<std::int64_t>(
                      c.counters.preemptions_issued)),
                  util::StrFormat(
                      "%llu/%llu",
                      static_cast<unsigned long long>(
                          c.counters.preemptions_blocked_guard),
                      static_cast<unsigned long long>(
                          c.counters.preemptions_blocked_cap)),
                  util::WithCommas(static_cast<std::int64_t>(
                      c.counters.tenant_downgrades)),
                  util::WithCommas(
                      static_cast<std::int64_t>(c.counters.tenant_rejects)),
                  util::StrFormat("%.3f", c.jain)});
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  if (!json_path.empty()) {
    bench::JsonEmitter emitter(
        "ext_tenancy",
        "multi-tenant SLO scheduling: priority classes, quota admission, "
        "preemption (tenant mix skew x preemption policy x scheduler)");
    emitter.AddCommonConfig(o);
    emitter.config().Add("slo_target_s", slo_target);
    for (const Cell& c : cells) {
      auto& cell = emitter.NewCell();
      cell.Add("scheduler", c.scheduler)
          .Add("mix", c.mix)
          .Add("preemption", c.preemption)
          .Add("prod_p90_queuing_s", c.prod_p90)
          .Add("batch_p90_queuing_s", c.batch_p90)
          .Add("best_effort_p90_queuing_s", c.be_p90)
          .Add("prod_slo_attainment", c.slo_attainment)
          .Add("tenant_fairness_jain", c.jain)
          .AddInt("preemptions_issued", c.counters.preemptions_issued)
          .AddInt("preemption_requeues", c.counters.preemption_requeues)
          .AddInt("blocked_by_slack_guard",
                  c.counters.preemptions_blocked_guard)
          .AddInt("blocked_by_cap", c.counters.preemptions_blocked_cap)
          .AddInt("priority_promotions",
                  c.counters.tenant_priority_promotions)
          .AddInt("downgrades", c.counters.tenant_downgrades)
          .AddInt("rejects", c.counters.tenant_rejects)
          .Add("restart_cost_s", c.counters.preemption_restart_seconds)
          .Add("lost_service_s", c.counters.preemption_lost_seconds);
      bench::AddThroughput(cell, c.events, c.wall);
    }
    if (!emitter.WriteTo(json_path)) return 1;
  }
  std::printf(
      "measured shape: preemption lifts prod SLO attainment (short prod "
      "jobs jump ahead of running best-effort work) but kill-and-requeue "
      "re-executes the victim's elapsed service, so at high load the lost "
      "work inflates queuing tails across classes; the starvation guard "
      "and per-task cap absorb most attempts; quota rejects rise with the "
      "prod-heavy mix\n");
  return 0;
}
