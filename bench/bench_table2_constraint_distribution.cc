// Table II: distribution of constraints in the Google trace and the
// relative slowdown of jobs requesting each constraint kind.
//
// Shares/occurrences come from characterizing the synthesized Google trace;
// relative slowdowns are *measured* by running the trace under Eagle-C and
// comparing, per constraint kind, the mean short-job response of jobs
// requesting that kind against unconstrained short jobs (exactly the
// paper's definition: "slowdown of a constrained job w.r.t an equivalent
// but unconstrained job").
#include <array>
#include <cstdio>

#include "bench/common.h"
#include "trace/characterize.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader("Table II: constraint distribution + relative slowdown",
                     o, "Table II (Google trace characterization)");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  const auto usage = trace::CharacterizeConstraints(trace);

  // Measure per-kind slowdown under Eagle-C.
  const auto runs = bench::Run("eagle-c", trace, cluster, o);
  const auto& report = runs.reports()[0];

  // Mean short-job response by requested attribute kind.
  std::array<double, cluster::kNumAttrs> sum{};
  std::array<std::size_t, cluster::kNumAttrs> count{};
  double unconstrained_sum = 0;
  std::size_t unconstrained_count = 0;
  for (const auto& job : report.jobs) {
    if (!job.short_class) continue;
    const auto& spec = trace.job(job.id);
    if (!spec.constrained()) {
      unconstrained_sum += job.response();
      ++unconstrained_count;
      continue;
    }
    for (const auto& c : spec.constraints) {
      sum[static_cast<std::size_t>(c.attr)] += job.response();
      ++count[static_cast<std::size_t>(c.attr)];
    }
  }
  const double base =
      unconstrained_count > 0 ? unconstrained_sum / unconstrained_count : 1.0;

  util::TextTable table({"Task Constraint", "Relative Slowdown (measured)",
                         "Paper", "% Share", "Occurrence"});
  for (std::size_t a = 0; a < cluster::kNumAttrs; ++a) {
    const double slowdown =
        count[a] > 0 ? (sum[a] / static_cast<double>(count[a])) / base : 0.0;
    table.AddRow({std::string(cluster::AttrName(static_cast<cluster::Attr>(a))),
                  util::StrFormat("%.2fx", slowdown),
                  util::StrFormat("%.2fx", cluster::AttrPaperSlowdowns()[a]),
                  util::StrFormat("%.2f", usage.shares[a]),
                  util::WithCommas(static_cast<std::int64_t>(
                      usage.occurrences[a]))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("unconstrained short jobs: %zu (mean response %s)\n",
              unconstrained_count, util::HumanDuration(base).c_str());
  std::printf("paper shape: constrained kinds slow down ~1.8-2x; ISA "
              "dominates the share column\n");
  return 0;
}
