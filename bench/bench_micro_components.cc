// Microbenchmarks (google-benchmark) for the components on the scheduling
// fast path, backing the paper's §VI-C overhead claims: CRV ratio updates
// are "trivial logic on simple bit vectors", wait-time estimation is O(1)
// per sample, and reordering costs O(queue length) per pop.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "cluster/builder.h"
#include "core/crv.h"
#include "queueing/mg1.h"
#include "sim/engine.h"
#include "trace/synthesizer.h"
#include "util/rng.h"

namespace {

using namespace phoenix;

const cluster::Cluster& SharedCluster(std::size_t nodes) {
  static std::map<std::size_t, std::unique_ptr<cluster::Cluster>> cache;
  auto& slot = cache[nodes];
  if (!slot) {
    slot = std::make_unique<cluster::Cluster>(
        cluster::BuildCluster({.num_machines = nodes, .seed = 1}));
  }
  return *slot;
}

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.ScheduleAt(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

// Probe-cancellation pattern: most scheduled events are cancelled before
// firing (late binding cancels a job's sibling probes once placed). The
// engine compacts tombstones once they outnumber half the live entries,
// keeping the heap O(live) instead of O(scheduled).
void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::Engine::EventId> ids;
    ids.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      ids.push_back(engine.ScheduleAt(static_cast<double>(i % 193), [] {}));
    }
    for (int i = 0; i < 4096; ++i) {
      if (i % 16 != 0) engine.Cancel(ids[static_cast<std::size_t>(i)]);
    }
    benchmark::DoNotOptimize(engine.Run());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EngineCancelHeavy);

void BM_ConstraintMatch(benchmark::State& state) {
  const auto& cl = SharedCluster(1);
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 2);
  std::vector<cluster::ConstraintSet> sets;
  for (int i = 0; i < 256; ++i) sets.push_back(synth.Synthesize());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cl.machine(0).Satisfies(sets[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConstraintMatch);

void BM_SatisfyingPoolLookup(benchmark::State& state) {
  const auto& cl = SharedCluster(static_cast<std::size_t>(state.range(0)));
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 3);
  std::vector<cluster::ConstraintSet> sets;
  for (int i = 0; i < 256; ++i) sets.push_back(synth.Synthesize());
  // Warm the memoization (steady-state behaviour: pools are cached).
  for (const auto& cs : sets) benchmark::DoNotOptimize(cl.CountSatisfying(cs));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cl.CountSatisfying(sets[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SatisfyingPoolLookup)->Arg(1000)->Arg(15000);

void BM_ProbeTargetSampling(benchmark::State& state) {
  const auto& cl = SharedCluster(static_cast<std::size_t>(state.range(0)));
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 4);
  std::vector<cluster::ConstraintSet> sets;
  for (int i = 0; i < 256; ++i) sets.push_back(synth.Synthesize());
  util::Rng rng(5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cl.SampleSatisfying(sets[i++ & 255], 16, rng));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ProbeTargetSampling)->Arg(1000)->Arg(15000);

void BM_CrvMonitorUpdate(benchmark::State& state) {
  const auto& cl = SharedCluster(1000);
  core::CrvMonitor monitor(cl);
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 6);
  std::vector<cluster::ConstraintSet> sets;
  for (int i = 0; i < 256; ++i) sets.push_back(synth.Synthesize());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& cs = sets[i++ & 255];
    monitor.OnEnqueue(cs);
    monitor.OnDequeue(cs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrvMonitorUpdate);

void BM_CrvSnapshot(benchmark::State& state) {
  const auto& cl = SharedCluster(1000);
  core::CrvMonitor monitor(cl);
  trace::ConstraintSynthesizer synth({.constrained_fraction = 1.0}, 7);
  for (int i = 0; i < 5000; ++i) monitor.OnEnqueue(synth.Synthesize());
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.TakeSnapshot());
  }
}
BENCHMARK(BM_CrvSnapshot);

void BM_PkWaitEstimate(benchmark::State& state) {
  queueing::WorkerWaitEstimator est(64);
  util::Rng rng(8);
  double t = 0;
  for (int i = 0; i < 128; ++i) {
    t += rng.Uniform(0.1, 2.0);
    est.OnArrival(t);
    est.OnServiceComplete(rng.Uniform(0.5, 1.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.EstimateWait());
  }
}
BENCHMARK(BM_PkWaitEstimate);

void BM_PkEstimatorIngest(benchmark::State& state) {
  queueing::WorkerWaitEstimator est(64);
  util::Rng rng(9);
  double t = 0;
  for (auto _ : state) {
    t += 0.5;
    est.OnArrival(t);
    est.OnServiceComplete(rng.Uniform(0.5, 1.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PkEstimatorIngest);

}  // namespace

BENCHMARK_MAIN();
