// Ablation benches for the design choices the paper fixes empirically:
//   * feature ablation — which Phoenix mechanism buys the tail win
//     (the paper's contributions 1-3, toggled independently);
//   * probe ratio (paper: 2 is the sweet spot, §V-A);
//   * heartbeat interval (paper: 9 s, §VI-C);
//   * slack / starvation threshold (paper: 5, §V-A);
//   * CRV threshold (Algorithm 1's trigger).
// Each sweep reports short-job p50/p99 and the relevant counters.
#include <cstdio>

#include "bench/common.h"

using namespace phoenix;

namespace {

void Report(util::TextTable& table, const std::string& label,
            const trace::Trace& trace, const cluster::Cluster& cluster,
            const runner::RunOptions& options) {
  const auto report = runner::RunSimulation(trace, cluster, options);
  const auto s = report.ResponseSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll);
  table.AddRow({label, util::HumanDuration(s.p50), util::HumanDuration(s.p90),
                util::HumanDuration(s.p99),
                util::WithCommas(static_cast<std::int64_t>(
                    report.counters.tasks_reordered_crv)),
                util::WithCommas(static_cast<std::int64_t>(
                    report.counters.soft_constraints_relaxed)),
                util::WithCommas(static_cast<std::int64_t>(
                    report.counters.probes_sent))});
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader("Ablation: Phoenix design choices", o,
                     "design-choice claims in §IV-A, §V-A, §VI-C");

  const auto trace = bench::MakeTrace("google", o);
  const auto cluster = bench::MakeCluster(o.nodes, o.seed);
  runner::RunOptions base;
  base.scheduler = "phoenix";
  base.config.seed = o.seed;

  {
    std::printf("--- feature ablation ---\n");
    util::TextTable t({"variant", "p50", "p90", "p99", "CRV reorders",
                       "relaxations", "probes"});
    Report(t, "phoenix (all on)", trace, cluster, base);
    auto v = base;
    v.config.phoenix_crv_reorder = false;
    Report(t, "- CRV reordering", trace, cluster, v);
    v = base;
    v.config.phoenix_admission = false;
    Report(t, "- proactive admission", trace, cluster, v);
    v = base;
    v.config.phoenix_wait_aware_probes = false;
    Report(t, "- wait-aware probes", trace, cluster, v);
    v = base;
    v.config.phoenix_suspend_sbp = true;
    Report(t, "+ SBP suspension at peak", trace, cluster, v);
    v = base;
    v.scheduler = "eagle-c";
    Report(t, "eagle-c (none)", trace, cluster, v);
    std::printf("%s\n", t.ToString().c_str());
  }

  {
    std::printf("--- probe ratio (paper picks 2) ---\n");
    util::TextTable t({"variant", "p50", "p90", "p99", "CRV reorders",
                       "relaxations", "probes"});
    for (const std::size_t ratio : {1u, 2u, 3u, 4u}) {
      auto v = base;
      v.config.probe_ratio = ratio;
      Report(t, util::StrFormat("probe ratio %zu", ratio), trace, cluster, v);
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  {
    std::printf("--- heartbeat interval (paper picks 9 s) ---\n");
    util::TextTable t({"variant", "p50", "p90", "p99", "CRV reorders",
                       "relaxations", "probes"});
    for (const double hb : {3.0, 9.0, 27.0, 81.0}) {
      auto v = base;
      v.config.heartbeat_interval = hb;
      Report(t, util::StrFormat("heartbeat %.0fs", hb), trace, cluster, v);
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  {
    std::printf("--- slack / starvation threshold (paper picks 5) ---\n");
    util::TextTable t({"variant", "p50", "p90", "p99", "CRV reorders",
                       "relaxations", "probes"});
    for (const std::size_t slack : {1u, 3u, 5u, 10u, 50u}) {
      auto v = base;
      v.config.slack_threshold = slack;
      Report(t, util::StrFormat("slack %zu", slack), trace, cluster, v);
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  {
    std::printf("--- CRV threshold (Algorithm 1 trigger) ---\n");
    util::TextTable t({"variant", "p50", "p90", "p99", "CRV reorders",
                       "relaxations", "probes"});
    for (const double thr : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      auto v = base;
      v.config.crv_threshold = thr;
      Report(t, util::StrFormat("CRV threshold %.2f", thr), trace, cluster, v);
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  {
    std::printf("--- fleet model: heterogeneity & generation correlation ---\n");
    util::TextTable t({"variant", "p50", "p90", "p99", "CRV reorders",
                       "relaxations", "probes"});
    for (const auto& [label, het, corr] :
         std::vector<std::tuple<std::string, double, double>>{
             {"heterogeneous, correlated (default)", 1.0, 0.6},
             {"heterogeneous, independent attrs", 1.0, 0.0},
             {"homogeneous fleet", 0.0, 0.6}}) {
      const auto fleet = cluster::BuildCluster({.num_machines = o.nodes,
                                                .seed = o.seed,
                                                .heterogeneity = het,
                                                .attribute_correlation = corr});
      Report(t, label, trace, fleet, base);
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("expected shape: proactive admission carries most of the p99 "
              "win; CRV reordering and wait-aware probes add on top; probe "
              "ratio 2 and moderate heartbeats are near-optimal; tiny slack "
              "disables reordering, huge slack risks starvation\n");
  return 0;
}
