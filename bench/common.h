// Shared plumbing for the per-table / per-figure bench harnesses.
//
// Every harness accepts:
//   --nodes=N   base fleet size the trace load is calibrated to
//   --jobs=N    jobs in the synthesized trace  (default: 50 x nodes)
//   --load=F    target offered utilization at the base fleet (default 0.85)
//   --seed=N    master seed
//   --runs=N    seeds averaged per data point (paper uses 5)
//   --threads=N experiment thread budget (default: hardware concurrency;
//               1 runs fully serial). Results are bit-identical either way.
//   --paper     full-scale mode: the paper's 15,000/5,000-node fleets
//
// Observability (see EXPERIMENTS.md "Tracing and auditing"):
//   --trace-out=F    Chrome trace_event JSON (chrome://tracing / Perfetto)
//   --trace-jsonl=F  newline-delimited JSON event stream
//   --timeseries=F   per-heartbeat worker TSV (+ F.crv for Phoenix runs)
//   --audit          run the invariant auditor; abort on any violation
// Multi-seed runs suffix each output file with ".seed<N>".
//
// Control-plane fabric (see EXPERIMENTS.md "The network fabric"):
//   --net-model=M    constant | uniform | lognormal | empirical
//   --net-latency=S  one-way scheduler<->worker delay in seconds
//   --net-jitter=F   uniform model: +/- fraction of the nominal delay
//   --net-sigma=F    lognormal model: sigma of the delay multiplier
//   --net-drop=F     P(message silently dropped), per copy
//   --net-dup=F      P(message duplicated in flight)
//   --net-reorder=F  P(message held back past later traffic)
//   --net-seed=N     fabric chaos stream seed (mixed with --seed)
//   --rpc-timeout=S  base RPC attempt deadline
//   --rpc-retries=N  max retries before a call fails over
//   --rpc-backoff=F  deadline multiplier per retry
//
// Sharded control plane (see EXPERIMENTS.md "Federation"):
//   --shards=N        scheduler shards; 1 (default) never constructs the
//                     plane and is byte-identical to the unsharded run
//   --gossip-period=S digest exchange period per shard
//   --stale-bound=S   peer digests older than this drop out of global views
//
// Power management (see EXPERIMENTS.md "Energy"):
//   --power                 attach the power model + controller; without it
//                           no power code runs and output is byte-identical
//   --power-policy=P        meter | dvfs | park | all (default all)
//   --power-park-idle=S     continuous idle seconds before a park
//   --power-min-active=F    min fraction of the fleet kept awake
//   --power-target-wait=S   E[W] the wake threshold is scaled from
//   --power-wake-factor=F   wake when fleet E[W] > factor * target-wait
//   --power-parked-weight=F parked machine's weight as CRV supply
//
// Multi-resource packing (see EXPERIMENTS.md "Packing"):
//   --packing               multi-dimensional capacity/demand vectors and
//                           multi-slot machines; without it the single-slot
//                           model runs and output is byte-identical
//   --gang-fraction=F       fraction of multi-task jobs tagged gang
//                           (all-or-nothing multi-machine start)
//   --gang-hold=S           reservation hold before a gang round aborts
//   --frag-weight=W         fragmentation penalty weight in the pack score
//   --malleable-fraction=F  fraction of multi-task jobs tagged malleable
//   --malleable-min-frac=F  malleable width floor as a fraction of tasks
//
// DAG workflows and deadlines (see EXPERIMENTS.md "DAG workloads"):
//   --dag             honor precedence edges: only ready tasks dispatch,
//                     completions release successors in critical-path
//                     order; off, jobs with deps run as flat tasks and
//                     output is byte-identical
//   --deadline        SLA-class deadlines + EDF tie-break in the worker
//                     queues; per-class attainment lands in the report
//   --dag-shape=S     chain | fanout | diamond edges overlaid on the trace
//   --dag-fraction=F  fraction of multi-task jobs tagged with DAG edges
//
// Workload frontends:
//   --shape=S         steady | diurnal | flash-crowd arrival shape applied
//                     on top of the profile's MMPP parameters
//   --trace-google=F  replay a Google cluster-trace v2 task_events CSV
//                     instead of the synthetic generator
// Defaults are the ideal fabric (constant latency, no loss): bit-identical
// to the pre-fabric simulator.
//
// Scaled defaults preserve the queueing behaviour (the sweeps vary the same
// utilization axis) while finishing in seconds on one core.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/builder.h"
#include "federation/config.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "packing/config.h"
#include "power/config.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "trace/generators.h"
#include "trace/google_reader.h"
#include "util/flags.h"
#include "util/format.h"
#include "workflow/config.h"
#include "workflow/shapes.h"

namespace phoenix::bench {

struct BenchOptions {
  std::size_t nodes = 300;
  std::size_t jobs = 15000;
  double load = 0.85;
  std::uint64_t seed = 42;
  std::size_t runs = 1;
  /// Experiment thread budget; 0 means hardware concurrency.
  std::size_t threads = 0;
  bool paper = false;
  /// When non-empty, sweep harnesses append tab-separated data rows here
  /// (one file per run, gnuplot-ready: series label + x + y columns).
  std::string tsv;
  /// Observability outputs applied to every simulation the bench runs.
  runner::ObsOptions obs;
  /// Control-plane fabric and RPC policy applied to every simulation.
  net::FabricConfig net;
  net::RpcConfig rpc;
  /// Sharded control plane; shards == 1 keeps the plane off.
  federation::FederationConfig federation;
  /// Power management; disabled (the default) never constructs it.
  power::PowerConfig power;
  /// Multi-resource packing; disabled (the default) keeps the single-slot
  /// worker model. The gang/malleable fractions also drive trace tagging
  /// (MakeTrace threads them into the generator).
  packing::PackingConfig packing;
  /// DAG workflows and deadline scheduling; both gates off (the default)
  /// never enters a workflow branch and output is byte-identical.
  workflow::WorkflowConfig workflow;
  /// DAG edge overlay MakeTrace applies when the dag gate is on.
  std::string dag_shape = "chain";
  double dag_fraction = 0.3;
  /// Arrival shape applied on top of the profile ("" keeps its MMPP mix).
  std::string shape;
  /// Google cluster-trace v2 CSV replayed instead of the generator.
  std::string trace_google;
};

/// Parses the common flags; exits(1) on bad input. `extra` names additional
/// flags the caller already consumed from the same Flags object.
inline BenchOptions ParseBenchOptions(util::Flags& flags,
                                      std::size_t default_nodes = 300,
                                      std::size_t default_runs = 1) {
  BenchOptions o;
  o.paper = flags.GetBool("paper", false);
  o.nodes = static_cast<std::size_t>(
      flags.GetInt("nodes", static_cast<std::int64_t>(default_nodes)));
  if (o.paper && !flags.Provided("nodes")) o.nodes = 15000;
  o.jobs = static_cast<std::size_t>(
      flags.GetInt("jobs", static_cast<std::int64_t>(50 * o.nodes)));
  o.load = flags.GetDouble("load", 0.85);
  o.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  o.runs = static_cast<std::size_t>(
      flags.GetInt("runs", static_cast<std::int64_t>(default_runs)));
  o.threads = static_cast<std::size_t>(flags.GetInt("threads", 0));
  o.tsv = flags.GetString("tsv", "");
  o.obs.trace_chrome = flags.GetString("trace-out", "");
  o.obs.trace_jsonl = flags.GetString("trace-jsonl", "");
  o.obs.timeseries_tsv = flags.GetString("timeseries", "");
  o.obs.audit = flags.GetBool("audit", false);
  const std::string model = flags.GetString("net-model", "constant");
  if (model == "constant") {
    o.net.model = net::LatencyModel::kConstant;
  } else if (model == "uniform") {
    o.net.model = net::LatencyModel::kUniform;
  } else if (model == "lognormal") {
    o.net.model = net::LatencyModel::kLognormal;
  } else if (model == "empirical") {
    o.net.model = net::LatencyModel::kEmpirical;
  } else {
    std::fprintf(stderr,
                 "--net-model must be constant|uniform|lognormal|empirical "
                 "(got \"%s\")\n",
                 model.c_str());
    std::exit(1);
  }
  o.net.one_way = flags.GetDouble("net-latency", o.net.one_way);
  o.net.jitter = flags.GetDouble("net-jitter", o.net.jitter);
  o.net.sigma = flags.GetDouble("net-sigma", o.net.sigma);
  o.net.drop_rate = flags.GetDouble("net-drop", 0.0);
  o.net.duplicate_rate = flags.GetDouble("net-dup", 0.0);
  o.net.reorder_rate = flags.GetDouble("net-reorder", 0.0);
  o.net.seed = static_cast<std::uint64_t>(flags.GetInt(
      "net-seed", static_cast<std::int64_t>(o.net.seed)));
  o.rpc.timeout = flags.GetDouble("rpc-timeout", o.rpc.timeout);
  o.rpc.max_retries = static_cast<std::size_t>(flags.GetInt(
      "rpc-retries", static_cast<std::int64_t>(o.rpc.max_retries)));
  o.rpc.backoff = flags.GetDouble("rpc-backoff", o.rpc.backoff);
  o.federation.shards = static_cast<std::uint32_t>(flags.GetInt(
      "shards", static_cast<std::int64_t>(o.federation.shards)));
  o.federation.gossip_period =
      flags.GetDouble("gossip-period", o.federation.gossip_period);
  o.federation.staleness_bound =
      flags.GetDouble("stale-bound", o.federation.staleness_bound);
  if (o.net.one_way <= 0 || o.rpc.timeout <= 0 || o.rpc.backoff < 1.0) {
    std::fprintf(stderr,
                 "--net-latency and --rpc-timeout must be positive; "
                 "--rpc-backoff must be >= 1\n");
    std::exit(1);
  }
  if (o.federation.shards == 0 || o.federation.gossip_period <= 0 ||
      o.federation.staleness_bound <= 0) {
    std::fprintf(stderr,
                 "--shards must be >= 1; --gossip-period and --stale-bound "
                 "must be positive\n");
    std::exit(1);
  }
  o.power.enabled = flags.GetBool("power", false);
  const std::string power_policy = flags.GetString("power-policy", "all");
  if (power_policy == "meter") {
    o.power.policy.park = false;
    o.power.policy.dvfs = false;
  } else if (power_policy == "dvfs") {
    o.power.policy.park = false;
  } else if (power_policy == "park") {
    o.power.policy.dvfs = false;
  } else if (power_policy != "all") {
    std::fprintf(stderr,
                 "--power-policy must be meter|dvfs|park|all (got \"%s\")\n",
                 power_policy.c_str());
    std::exit(1);
  }
  o.power.policy.park_idle_after =
      flags.GetDouble("power-park-idle", o.power.policy.park_idle_after);
  o.power.policy.min_active_fraction =
      flags.GetDouble("power-min-active", o.power.policy.min_active_fraction);
  o.power.policy.target_wait =
      flags.GetDouble("power-target-wait", o.power.policy.target_wait);
  o.power.policy.wake_wait_factor =
      flags.GetDouble("power-wake-factor", o.power.policy.wake_wait_factor);
  o.power.policy.parked_supply_weight = flags.GetDouble(
      "power-parked-weight", o.power.policy.parked_supply_weight);
  if (o.power.policy.park_idle_after < 0 ||
      o.power.policy.min_active_fraction < 0 ||
      o.power.policy.min_active_fraction > 1 ||
      o.power.policy.target_wait <= 0 ||
      o.power.policy.wake_wait_factor <= 0 ||
      o.power.policy.parked_supply_weight < 0) {
    std::fprintf(stderr,
                 "--power-park-idle and --power-parked-weight must be >= 0; "
                 "--power-min-active must be in [0,1]; --power-target-wait "
                 "and --power-wake-factor must be positive\n");
    std::exit(1);
  }
  o.packing.enabled = flags.GetBool("packing", false);
  o.packing.gang_fraction =
      flags.GetDouble("gang-fraction", o.packing.gang_fraction);
  o.packing.gang_hold = flags.GetDouble("gang-hold", o.packing.gang_hold);
  o.packing.frag_weight =
      flags.GetDouble("frag-weight", o.packing.frag_weight);
  o.packing.malleable_fraction =
      flags.GetDouble("malleable-fraction", o.packing.malleable_fraction);
  o.packing.malleable_min_frac =
      flags.GetDouble("malleable-min-frac", o.packing.malleable_min_frac);
  if (o.packing.gang_fraction < 0 || o.packing.malleable_fraction < 0 ||
      o.packing.gang_fraction + o.packing.malleable_fraction > 1.0 ||
      o.packing.malleable_min_frac < 0 ||
      o.packing.malleable_min_frac > 1.0 || o.packing.gang_hold <= 0 ||
      o.packing.frag_weight < 0) {
    std::fprintf(stderr,
                 "--gang-fraction and --malleable-fraction must be >= 0 and "
                 "sum to <= 1; --malleable-min-frac must be in [0,1]; "
                 "--gang-hold must be positive; --frag-weight must be "
                 ">= 0\n");
    std::exit(1);
  }
  o.workflow.dag = flags.GetBool("dag", false);
  o.workflow.deadline = flags.GetBool("deadline", false);
  o.dag_shape = flags.GetString("dag-shape", o.dag_shape);
  o.dag_fraction = flags.GetDouble("dag-fraction", o.dag_fraction);
  o.shape = flags.GetString("shape", "");
  o.trace_google = flags.GetString("trace-google", "");
  if (!workflow::KnownDagShape(o.dag_shape)) {
    std::fprintf(stderr, "--dag-shape must be chain|fanout|diamond (got \"%s\")\n",
                 o.dag_shape.c_str());
    std::exit(1);
  }
  if (o.dag_fraction < 0 || o.dag_fraction > 1.0) {
    std::fprintf(stderr, "--dag-fraction must be in [0,1]\n");
    std::exit(1);
  }
  // Unknown shapes are a usage error, not a silent steady fallback (and not
  // an abort: the nullable lookup exists exactly for CLI input).
  if (!o.shape.empty() && trace::FindShapeByName(o.shape) == nullptr) {
    std::fprintf(stderr,
                 "--shape must be steady|diurnal|flash-crowd (got \"%s\")\n",
                 o.shape.c_str());
    std::exit(1);
  }
  // After every flag above is declared, `--help` can print the complete
  // auto-generated listing and an unknown flag dies with that same usage.
  // Callers declaring extra flags before calling ParseBenchOptions get them
  // included for free (declaration order).
  flags.ValidateOrExit();
  runner::SetExperimentThreads(o.threads);
  return o;
}

/// Generates the named profile's trace calibrated to the bench fleet, or
/// replays `--trace-google` when set. The packing gang/malleable mix tags
/// the trace only when packing is enabled, so `--packing`-off runs generate
/// byte-identical traces; likewise the DAG overlay runs only under `--dag`.
inline trace::Trace MakeTrace(const std::string& profile,
                              const BenchOptions& o) {
  trace::Trace t;
  if (!o.trace_google.empty()) {
    std::string error;
    t = trace::ReadGoogleTraceFile(o.trace_google, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "--trace-google %s: %s\n", o.trace_google.c_str(),
                   error.c_str());
      std::exit(1);
    }
  } else {
    auto gen = trace::ProfileByName(profile);
    gen.num_jobs = o.jobs;
    gen.num_workers = o.nodes;
    gen.target_load = o.load;
    gen.seed = o.seed;
    if (o.packing.enabled) {
      gen.gang_fraction = o.packing.gang_fraction;
      gen.malleable_fraction = o.packing.malleable_fraction;
      gen.malleable_min_frac = o.packing.malleable_min_frac;
    }
    if (!o.shape.empty()) {
      trace::ApplyLoadShape(*trace::FindShapeByName(o.shape), gen);
    }
    t = trace::GenerateTrace(profile, gen);
  }
  if (o.workflow.dag) {
    t = workflow::ApplyDagShape(t, o.dag_shape, o.dag_fraction, o.seed);
  }
  return t;
}

inline cluster::Cluster MakeCluster(std::size_t nodes, std::uint64_t seed) {
  return cluster::BuildCluster({.num_machines = nodes, .seed = seed});
}

/// Multi-seed run of one scheduler over a fixed trace/cluster.
inline runner::RepeatedRuns Run(const std::string& scheduler,
                                const trace::Trace& t,
                                const cluster::Cluster& cl,
                                const BenchOptions& o) {
  runner::RunOptions ro;
  ro.scheduler = scheduler;
  ro.config.seed = o.seed;
  ro.config.net = o.net;
  ro.config.rpc = o.rpc;
  ro.obs = o.obs;
  ro.federation = o.federation;
  ro.power = o.power;
  ro.config.packing = o.packing;
  ro.config.workflow = o.workflow;
  return runner::RepeatedRuns(t, cl, ro, o.runs);
}

/// Equivalent paper-scale node count for a sweep multiplier (the paper
/// sweeps 15,000 -> 19,000 workers; we sweep the same utilization axis by
/// scaling the fleet against a fixed trace).
inline std::string PaperNodesLabel(std::size_t base_nodes, double multiplier) {
  return util::WithCommas(
      static_cast<std::int64_t>(15000.0 * multiplier *
                                (base_nodes > 0 ? 1.0 : 1.0)));
}

inline void PrintHeader(const char* title, const BenchOptions& o,
                        const char* paper_ref) {
  std::printf("== %s ==\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("config: nodes=%zu jobs=%zu load=%.2f seed=%llu runs=%zu%s\n\n",
              o.nodes, o.jobs, o.load,
              static_cast<unsigned long long>(o.seed), o.runs,
              o.paper ? " (paper scale)" : "");
}

// ---- Machine-readable output ----------------------------------------------

/// Key-value JSON object builder for the bench emitters (flat objects only;
/// keys are bench-controlled literals, values get minimal escaping).
class JsonObject {
 public:
  JsonObject& Add(const char* key, const std::string& value) {
    return Raw(key, "\"" + Escaped(value) + "\"");
  }
  JsonObject& Add(const char* key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonObject& Add(const char* key, double value) {
    return Raw(key, util::StrFormat("%g", value));
  }
  JsonObject& Add(const char* key, bool value) {
    return Raw(key, value ? "true" : "false");
  }
  JsonObject& AddInt(const char* key, std::uint64_t value) {
    return Raw(key, util::StrFormat("%llu",
                                    static_cast<unsigned long long>(value)));
  }

  std::string Render() const { return "{" + body_ + "}"; }
  bool empty() const { return body_.empty(); }

 private:
  JsonObject& Raw(const char* key, std::string value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + std::string(key) + "\": " + std::move(value);
    return *this;
  }
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  std::string body_;
};

/// Appends the host-side throughput fields, summed over a cell's runs.
/// `events_fired` is deterministic for the cell's seeds; `sim_wall_seconds`
/// and `events_per_sec` are measurement artifacts — compare ratios on one
/// host, never absolute values across committed artifacts.
inline JsonObject& AddThroughput(JsonObject& cell, std::uint64_t events,
                                 double wall) {
  return cell.AddInt("events_fired", events)
      .Add("sim_wall_seconds", wall)
      .Add("events_per_sec",
           wall > 0 ? static_cast<double>(events) / wall : 0.0);
}

inline JsonObject& AddThroughput(
    JsonObject& cell, const std::vector<metrics::SimReport>& reports) {
  std::uint64_t events = 0;
  double wall = 0;
  for (const auto& r : reports) {
    events += r.events_fired;
    wall += r.sim_wall_seconds;
  }
  return AddThroughput(cell, events, wall);
}

/// Unified `--json` emitter: every BENCH_*.json artifact is stamped with the
/// bench name, a one-line description, and a config echo (the common bench
/// options plus bench-specific keys), followed by a flat list of cells — so
/// a committed artifact is self-describing about what produced it.
class JsonEmitter {
 public:
  JsonEmitter(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  /// Config echo. Call AddCommonConfig once, then Add bench-specific keys.
  JsonObject& config() { return config_; }
  void AddCommonConfig(const BenchOptions& o) {
    config_.AddInt("nodes", o.nodes)
        .AddInt("jobs", o.jobs)
        .Add("load", o.load)
        .AddInt("seed", o.seed)
        .AddInt("runs", o.runs);
  }

  /// Appends a cell and returns it for field population.
  JsonObject& NewCell() {
    cells_.emplace_back();
    return cells_.back();
  }

  std::string Render() const {
    std::string out = "{\n";
    out += "  \"benchmark\": \"" + name_ + "\",\n";
    out += "  \"description\": \"" + description_ + "\",\n";
    out += "  \"config\": " + config_.Render() + ",\n";
    out += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      out += "    " + cells_[i].Render();
      out += i + 1 < cells_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the artifact; prints the path on success. Returns false (with a
  /// message on stderr) if the file cannot be opened.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --json path %s\n", path.c_str());
      return false;
    }
    const std::string body = Render();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::string description_;
  JsonObject config_;
  std::vector<JsonObject> cells_;
};

}  // namespace phoenix::bench
