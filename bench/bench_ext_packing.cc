// Extension bench: multi-resource vector packing, gang tasks, and
// malleable jobs (src/packing).
//
// The paper's worker owns one execution slot; real heterogeneous fleets
// place tasks against multi-dimensional capacity (cores, memory, GPU) and
// run several at once. This sweep enables the packing subsystem and crosses
// four workload mixes — plain (every job rigid, no co-scheduling), gang
// (15 % of multi-task jobs start all-or-nothing), malleable (15 % shrink /
// expand width with supply), and mixed (both) — for Phoenix and Eagle-C.
//
// Reported per cell: packing efficiency (demand-weighted core-seconds over
// fleet core capacity x makespan — the packed analogue of utilization),
// the time-average fragmentation (free-core fraction stranded on partially
// busy machines), mean gang wait (arrival -> reservation commit), short-job
// p90 queuing delay, and the packing counters (packed starts, fit
// rejections, gang commit/abort/retry traffic, malleable width churn).
//
// `--json=PATH` additionally writes every cell as machine-readable JSON
// (committed as BENCH_packing.json).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "metrics/percentile.h"

using namespace phoenix;

namespace {

struct Mix {
  const char* name;
  double gang_fraction;
  double malleable_fraction;
};

struct Cell {
  std::string scheduler;
  std::string mix;
  double packing_efficiency = 0;
  double fragmentation = 0;
  double gang_wait = 0;
  double short_p90 = 0;
  metrics::SchedulerCounters counters;
  std::uint64_t events = 0;
  double wall = 0;
};

bench::JsonEmitter MakeEmitter(const bench::BenchOptions& o,
                               const std::vector<Cell>& cells) {
  bench::JsonEmitter emitter(
      "ext_packing",
      "multi-resource vector packing: multi-slot machines, gang tasks, and "
      "malleable jobs (workload mix x scheduler)");
  emitter.AddCommonConfig(o);
  emitter.config()
      .Add("audit", o.obs.audit)
      .Add("frag_weight", o.packing.frag_weight)
      .Add("gang_hold_s", o.packing.gang_hold)
      .Add("malleable_min_frac", o.packing.malleable_min_frac);
  for (const Cell& c : cells) {
    auto& cell = emitter.NewCell();
    cell.Add("scheduler", c.scheduler)
        .Add("mix", c.mix)
        .Add("packing_efficiency", c.packing_efficiency)
        .Add("fragmentation_time_avg", c.fragmentation)
        .Add("gang_wait_mean_s", c.gang_wait)
        .Add("short_p90_queuing_s", c.short_p90)
        .AddInt("packed_tasks", c.counters.packed_tasks)
        .AddInt("pack_fit_rejections", c.counters.pack_fit_rejections)
        .AddInt("pack_demand_clamped", c.counters.pack_demand_clamped)
        .AddInt("gangs_placed", c.counters.gangs_placed)
        .AddInt("gang_commits", c.counters.gang_commits)
        .AddInt("gang_aborts", c.counters.gang_aborts)
        .AddInt("gang_retry_waits", c.counters.gang_retry_waits)
        .AddInt("gangs_degraded", c.counters.gangs_degraded)
        .AddInt("malleable_jobs", c.counters.malleable_jobs)
        .AddInt("malleable_expands", c.counters.malleable_expands)
        .AddInt("malleable_shrinks", c.counters.malleable_shrinks)
        .AddInt("malleable_min_hits", c.counters.malleable_min_hits);
    bench::AddThroughput(cell, c.events, c.wall);
  }
  return emitter;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string json_path = flags.GetString("json", "");
  auto o = bench::ParseBenchOptions(flags, 96, 2);
  // This bench exists to exercise the subsystem: packing is always on here,
  // and the per-mix gang/malleable fractions below override the flags.
  o.packing.enabled = true;
  bench::PrintHeader("Extension: multi-resource vector packing", o,
                     "beyond-paper: the paper's workers are single-slot");
  std::printf("demand: hashed per job (cores/memory/GPU); gang hold=%gs, "
              "malleable floor=%.0f%% of tasks\n\n",
              o.packing.gang_hold, 100 * o.packing.malleable_min_frac);

  const std::vector<Mix> mixes = {
      {"plain", 0.0, 0.0},
      {"gang", 0.15, 0.0},
      {"malleable", 0.0, 0.15},
      {"mixed", 0.15, 0.15},
  };

  const auto cluster = bench::MakeCluster(o.nodes, o.seed);

  std::FILE* tsv = nullptr;
  if (!o.tsv.empty()) {
    tsv = std::fopen(o.tsv.c_str(), "a");
    if (tsv != nullptr) {
      std::fseek(tsv, 0, SEEK_END);
      if (std::ftell(tsv) == 0) {
        std::fprintf(tsv,
                     "scheduler\tmix\tpack_eff\tfrag\tgang_wait\tshort_p90\t"
                     "packed\tfit_rej\tcommits\taborts\n");
      }
    }
  }

  std::vector<Cell> cells;
  for (const std::string sched : {"phoenix", "eagle-c"}) {
    std::printf("--- %s ---\n", sched.c_str());
    util::TextTable t({"mix", "pack eff", "frag", "gang wait",
                       "short p90 qdelay", "packed", "fit rej",
                       "commits/aborts", "expands/shrinks"});
    for (const Mix& mix : mixes) {
      auto po = o;
      po.packing.gang_fraction = mix.gang_fraction;
      po.packing.malleable_fraction = mix.malleable_fraction;
      const auto trace = bench::MakeTrace("google", po);
      const auto runs = bench::Run(sched, trace, cluster, po);
      Cell c;
      c.scheduler = sched;
      c.mix = mix.name;
      c.counters = runner::AggregateCounters(runs.reports());
      c.short_p90 = runs.MeanQueuingPercentile(
          90, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll);
      for (const auto& r : runs.reports()) {
        c.packing_efficiency += r.packing_efficiency;
        c.fragmentation += r.fragmentation_time_avg;
        c.gang_wait += r.gang_wait_mean;
        c.events += r.events_fired;
        c.wall += r.sim_wall_seconds;
      }
      const auto n = static_cast<double>(runs.reports().size());
      c.packing_efficiency /= n;
      c.fragmentation /= n;
      c.gang_wait /= n;
      cells.push_back(c);
      t.AddRow(
          {mix.name, util::StrFormat("%.1f%%", 100 * c.packing_efficiency),
           util::StrFormat("%.1f%%", 100 * c.fragmentation),
           c.counters.gang_commits > 0 ? util::HumanDuration(c.gang_wait)
                                       : "-",
           util::HumanDuration(c.short_p90),
           util::WithCommas(
               static_cast<std::int64_t>(c.counters.packed_tasks)),
           util::WithCommas(
               static_cast<std::int64_t>(c.counters.pack_fit_rejections)),
           util::StrFormat(
               "%llu/%llu",
               static_cast<unsigned long long>(c.counters.gang_commits),
               static_cast<unsigned long long>(c.counters.gang_aborts)),
           util::StrFormat(
               "%llu/%llu",
               static_cast<unsigned long long>(c.counters.malleable_expands),
               static_cast<unsigned long long>(
                   c.counters.malleable_shrinks))});
      if (tsv != nullptr) {
        std::fprintf(
            tsv, "%s\t%s\t%.4f\t%.4f\t%.4f\t%.6f\t%llu\t%llu\t%llu\t%llu\n",
            sched.c_str(), mix.name, c.packing_efficiency, c.fragmentation,
            c.gang_wait, c.short_p90,
            static_cast<unsigned long long>(c.counters.packed_tasks),
            static_cast<unsigned long long>(c.counters.pack_fit_rejections),
            static_cast<unsigned long long>(c.counters.gang_commits),
            static_cast<unsigned long long>(c.counters.gang_aborts));
      }
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  if (tsv != nullptr) std::fclose(tsv);
  if (!json_path.empty() && !MakeEmitter(o, cells).WriteTo(json_path)) {
    return 1;
  }
  std::printf(
      "expected shape: packing lifts effective throughput well past the "
      "one-task-per-machine ceiling (several small tasks share a machine) "
      "at a bounded fragmentation cost; gangs pay their atomicity in wait "
      "(reserve -> commit) under contention; malleable jobs absorb supply "
      "swings by shrinking toward their width floor instead of queuing\n");
  return 0;
}
