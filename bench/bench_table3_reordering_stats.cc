// Table III: CRV reordering statistics per trace.
//
// Runs Phoenix over all three workloads and reports, per trace, the node
// count, constrained/unconstrained task counts, tasks reordered by the CRV
// discipline and the short-job share — the same columns as the paper's
// Table III. Node counts scale with --nodes (the paper used Yahoo@5,000 and
// Cloudera/Google@15,000; the same 1:3 proportion is preserved here).
#include <cstdio>

#include "bench/common.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 1);
  bench::PrintHeader("Table III: CRV reordering statistics", o,
                     "Table III (Phoenix over Yahoo/Cloudera/Google)");

  util::TextTable table({"Workload", "Nodes", "Constrained Tasks",
                         "Unconstrained Tasks", "Reordered tasks",
                         "Short jobs"});
  for (const std::string profile : {"yahoo", "cloudera", "google"}) {
    // Preserve the paper's fleet proportions: Yahoo ran on a third of the
    // nodes the other traces used.
    auto opts = o;
    if (profile == "yahoo") {
      opts.nodes = std::max<std::size_t>(o.nodes / 3, 8);
      opts.jobs = 50 * opts.nodes;
    }
    const auto trace = bench::MakeTrace(profile, opts);
    const auto cluster = bench::MakeCluster(opts.nodes, opts.seed);
    const auto runs = bench::Run("phoenix", trace, cluster, opts);
    const auto& report = runs.reports()[0];
    const auto stats = trace.ComputeStats();
    const auto reordered = report.counters.tasks_reordered_crv;
    table.AddRow(
        {profile, util::WithCommas(static_cast<std::int64_t>(opts.nodes)),
         util::WithCommas(static_cast<std::int64_t>(stats.constrained_tasks)),
         util::WithCommas(static_cast<std::int64_t>(stats.num_tasks -
                                                    stats.constrained_tasks)),
         util::WithCommas(static_cast<std::int64_t>(reordered)),
         util::StrFormat("%.2f%%", 100 * stats.short_job_fraction)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape: ~50%% of tasks constrained; reordered tasks are "
              "a small fraction of the constrained ones; short jobs "
              ">= 90%%\n");
  return 0;
}
