// Figure 7: short-job response times (p50/p90/p99) for Phoenix normalized
// to Eagle-C, across cluster sizes (utilization sweep), for all three
// traces. Lower is better; the paper reports Phoenix taking ~52 % of
// Eagle-C's p99 (1.9x) at peak utilization, converging to parity as the
// cluster grows.
#include <cstdio>

#include "bench/sweep.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const auto o = bench::ParseBenchOptions(flags, 300, 2);
  bench::PrintHeader("Figure 7: Phoenix vs Eagle-C, short jobs", o,
                     "Fig 7a/7b/7c");
  for (const std::string profile : {"yahoo", "cloudera", "google"}) {
    bench::RunNormalizedSweep(profile, "phoenix", "eagle-c",
                              metrics::ClassFilter::kShort, o);
  }
  std::printf("paper shape: normalized p99 ~0.5 at the highest utilization, "
              "rising toward ~1.0 as the fleet grows; p50/p90 show smaller "
              "gains\n");
  return 0;
}
