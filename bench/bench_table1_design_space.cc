// Table I: design-space comparison of datacenter schedulers.
//
// The paper's Table I is a qualitative capability matrix. This harness
// prints the matrix and cross-checks the five implemented rows against the
// scheduler registry (every implemented scheduler must exist and report the
// matching name), so the table cannot drift from the code.
#include <cstdio>

#include "bench/common.h"
#include "runner/registry.h"
#include "sim/engine.h"
#include "util/format.h"

namespace {

struct Row {
  const char* scheduler;
  const char* control_plane;
  const char* binding;
  const char* queuing;
  const char* reordering;
  const char* load_balancing;
  const char* constraints;
  const char* implemented;  // registry name or "-"
};

constexpr Row kRows[] = {
    {"Borg", "Hierarchical", "Early", "Global", "x", "Static", "yes", "-"},
    {"Mesos", "Hierarchical", "Early", "Global", "x", "Static", "yes", "-"},
    {"Paragon", "Monolithic", "Early", "Global", "x", "Static", "yes", "-"},
    {"Sparrow", "Distributed", "Late", "Worker side", "x", "Static",
     "Trivial", "sparrow-c"},
    {"Hawk", "Hybrid", "Late", "Worker side", "x", "Stealing", "Trivial",
     "hawk-c"},
    {"Eagle", "Hybrid", "Late", "Worker side", "SRPT", "Stealing", "Trivial",
     "eagle-c"},
    {"YacC+D", "Hybrid", "Early", "Both", "SRPT", "Adaptive", "yes",
     "yacc-d"},
    {"Tetrisched", "Monolithic", "Early", "Global", "x", "Static", "Trivial",
     "-"},
    {"Choosy", "Hierarchical", "Early", "Global", "x", "Static",
     "Single resource", "-"},
    {"Phoenix", "Hybrid", "Late", "Worker side", "CRV based", "Adaptive",
     "Multi resource", "phoenix"},
};

}  // namespace

int main(int argc, char** argv) {
  phoenix::util::Flags flags;
  flags.Parse(argc, argv);
  flags.ValidateOrExit();

  std::printf("== Table I: design space of datacenter schedulers ==\n\n");
  phoenix::util::TextTable table({"Scheduler", "Control Plane", "Binding",
                                  "Queuing", "Queue Reordering",
                                  "Load Balancing", "Placement constraints",
                                  "In this repo"});
  for (const Row& row : kRows) {
    table.AddRow({row.scheduler, row.control_plane, row.binding, row.queuing,
                  row.reordering, row.load_balancing, row.constraints,
                  row.implemented});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Validate the implemented rows against the registry.
  phoenix::sim::Engine engine;
  const auto cluster = phoenix::bench::MakeCluster(8, 1);
  phoenix::sched::SchedulerConfig config;
  std::size_t implemented = 0;
  for (const Row& row : kRows) {
    if (std::string(row.implemented) == "-") continue;
    auto s = phoenix::runner::MakeScheduler(row.implemented, engine, cluster,
                                            config);
    if (s->name() != row.implemented) {
      std::fprintf(stderr, "registry mismatch for %s\n", row.implemented);
      return 1;
    }
    ++implemented;
  }
  std::printf("validated %zu implemented schedulers against the registry\n",
              implemented);
  return 0;
}
