file(REMOVE_RECURSE
  "CMakeFiles/parallel_runner_test.dir/parallel_runner_test.cc.o"
  "CMakeFiles/parallel_runner_test.dir/parallel_runner_test.cc.o.d"
  "parallel_runner_test"
  "parallel_runner_test.pdb"
  "parallel_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
