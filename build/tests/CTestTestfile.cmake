# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_runner_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fairness_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/p2_quantile_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
