file(REMOVE_RECURSE
  "../bench/bench_fig6_supply_demand"
  "../bench/bench_fig6_supply_demand.pdb"
  "CMakeFiles/bench_fig6_supply_demand.dir/bench_fig6_supply_demand.cc.o"
  "CMakeFiles/bench_fig6_supply_demand.dir/bench_fig6_supply_demand.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_supply_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
