# Empty dependencies file for bench_fig6_supply_demand.
# This may be replaced when dependencies are built.
