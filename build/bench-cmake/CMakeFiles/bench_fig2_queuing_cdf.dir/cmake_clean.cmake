file(REMOVE_RECURSE
  "../bench/bench_fig2_queuing_cdf"
  "../bench/bench_fig2_queuing_cdf.pdb"
  "CMakeFiles/bench_fig2_queuing_cdf.dir/bench_fig2_queuing_cdf.cc.o"
  "CMakeFiles/bench_fig2_queuing_cdf.dir/bench_fig2_queuing_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_queuing_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
