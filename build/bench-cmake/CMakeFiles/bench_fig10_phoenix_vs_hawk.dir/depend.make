# Empty dependencies file for bench_fig10_phoenix_vs_hawk.
# This may be replaced when dependencies are built.
