file(REMOVE_RECURSE
  "../bench/bench_fig10_phoenix_vs_hawk"
  "../bench/bench_fig10_phoenix_vs_hawk.pdb"
  "CMakeFiles/bench_fig10_phoenix_vs_hawk.dir/bench_fig10_phoenix_vs_hawk.cc.o"
  "CMakeFiles/bench_fig10_phoenix_vs_hawk.dir/bench_fig10_phoenix_vs_hawk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_phoenix_vs_hawk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
