file(REMOVE_RECURSE
  "../bench/bench_table2_constraint_distribution"
  "../bench/bench_table2_constraint_distribution.pdb"
  "CMakeFiles/bench_table2_constraint_distribution.dir/bench_table2_constraint_distribution.cc.o"
  "CMakeFiles/bench_table2_constraint_distribution.dir/bench_table2_constraint_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_constraint_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
