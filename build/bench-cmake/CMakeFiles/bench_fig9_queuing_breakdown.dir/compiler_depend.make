# Empty compiler generated dependencies file for bench_fig9_queuing_breakdown.
# This may be replaced when dependencies are built.
