file(REMOVE_RECURSE
  "../bench/bench_fig7_phoenix_vs_eagle_short"
  "../bench/bench_fig7_phoenix_vs_eagle_short.pdb"
  "CMakeFiles/bench_fig7_phoenix_vs_eagle_short.dir/bench_fig7_phoenix_vs_eagle_short.cc.o"
  "CMakeFiles/bench_fig7_phoenix_vs_eagle_short.dir/bench_fig7_phoenix_vs_eagle_short.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_phoenix_vs_eagle_short.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
