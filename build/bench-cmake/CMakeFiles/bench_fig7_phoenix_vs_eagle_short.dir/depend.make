# Empty dependencies file for bench_fig7_phoenix_vs_eagle_short.
# This may be replaced when dependencies are built.
