file(REMOVE_RECURSE
  "../bench/bench_ext_affinity_failures"
  "../bench/bench_ext_affinity_failures.pdb"
  "CMakeFiles/bench_ext_affinity_failures.dir/bench_ext_affinity_failures.cc.o"
  "CMakeFiles/bench_ext_affinity_failures.dir/bench_ext_affinity_failures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_affinity_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
