file(REMOVE_RECURSE
  "../bench/bench_fig8_phoenix_vs_eagle_long"
  "../bench/bench_fig8_phoenix_vs_eagle_long.pdb"
  "CMakeFiles/bench_fig8_phoenix_vs_eagle_long.dir/bench_fig8_phoenix_vs_eagle_long.cc.o"
  "CMakeFiles/bench_fig8_phoenix_vs_eagle_long.dir/bench_fig8_phoenix_vs_eagle_long.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_phoenix_vs_eagle_long.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
