# Empty compiler generated dependencies file for bench_fig8_phoenix_vs_eagle_long.
# This may be replaced when dependencies are built.
