# Empty compiler generated dependencies file for bench_fig11_phoenix_vs_sparrow.
# This may be replaced when dependencies are built.
