file(REMOVE_RECURSE
  "../bench/bench_fig11_phoenix_vs_sparrow"
  "../bench/bench_fig11_phoenix_vs_sparrow.pdb"
  "CMakeFiles/bench_fig11_phoenix_vs_sparrow.dir/bench_fig11_phoenix_vs_sparrow.cc.o"
  "CMakeFiles/bench_fig11_phoenix_vs_sparrow.dir/bench_fig11_phoenix_vs_sparrow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_phoenix_vs_sparrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
