# Empty compiler generated dependencies file for bench_fig4_constraint_slowdown.
# This may be replaced when dependencies are built.
