file(REMOVE_RECURSE
  "../bench/bench_fig4_constraint_slowdown"
  "../bench/bench_fig4_constraint_slowdown.pdb"
  "CMakeFiles/bench_fig4_constraint_slowdown.dir/bench_fig4_constraint_slowdown.cc.o"
  "CMakeFiles/bench_fig4_constraint_slowdown.dir/bench_fig4_constraint_slowdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_constraint_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
