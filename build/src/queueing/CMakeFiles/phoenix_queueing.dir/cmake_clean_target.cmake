file(REMOVE_RECURSE
  "libphoenix_queueing.a"
)
