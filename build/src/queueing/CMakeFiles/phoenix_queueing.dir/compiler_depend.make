# Empty compiler generated dependencies file for phoenix_queueing.
# This may be replaced when dependencies are built.
