file(REMOVE_RECURSE
  "CMakeFiles/phoenix_queueing.dir/distributions.cc.o"
  "CMakeFiles/phoenix_queueing.dir/distributions.cc.o.d"
  "CMakeFiles/phoenix_queueing.dir/mg1.cc.o"
  "CMakeFiles/phoenix_queueing.dir/mg1.cc.o.d"
  "CMakeFiles/phoenix_queueing.dir/stats.cc.o"
  "CMakeFiles/phoenix_queueing.dir/stats.cc.o.d"
  "libphoenix_queueing.a"
  "libphoenix_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
