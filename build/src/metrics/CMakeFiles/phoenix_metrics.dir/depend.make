# Empty dependencies file for phoenix_metrics.
# This may be replaced when dependencies are built.
