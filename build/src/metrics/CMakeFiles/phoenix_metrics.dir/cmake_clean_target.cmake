file(REMOVE_RECURSE
  "libphoenix_metrics.a"
)
