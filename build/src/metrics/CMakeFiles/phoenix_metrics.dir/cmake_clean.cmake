file(REMOVE_RECURSE
  "CMakeFiles/phoenix_metrics.dir/fairness.cc.o"
  "CMakeFiles/phoenix_metrics.dir/fairness.cc.o.d"
  "CMakeFiles/phoenix_metrics.dir/p2_quantile.cc.o"
  "CMakeFiles/phoenix_metrics.dir/p2_quantile.cc.o.d"
  "CMakeFiles/phoenix_metrics.dir/percentile.cc.o"
  "CMakeFiles/phoenix_metrics.dir/percentile.cc.o.d"
  "CMakeFiles/phoenix_metrics.dir/report.cc.o"
  "CMakeFiles/phoenix_metrics.dir/report.cc.o.d"
  "CMakeFiles/phoenix_metrics.dir/timeseries.cc.o"
  "CMakeFiles/phoenix_metrics.dir/timeseries.cc.o.d"
  "libphoenix_metrics.a"
  "libphoenix_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
