
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/fairness.cc" "src/metrics/CMakeFiles/phoenix_metrics.dir/fairness.cc.o" "gcc" "src/metrics/CMakeFiles/phoenix_metrics.dir/fairness.cc.o.d"
  "/root/repo/src/metrics/p2_quantile.cc" "src/metrics/CMakeFiles/phoenix_metrics.dir/p2_quantile.cc.o" "gcc" "src/metrics/CMakeFiles/phoenix_metrics.dir/p2_quantile.cc.o.d"
  "/root/repo/src/metrics/percentile.cc" "src/metrics/CMakeFiles/phoenix_metrics.dir/percentile.cc.o" "gcc" "src/metrics/CMakeFiles/phoenix_metrics.dir/percentile.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/metrics/CMakeFiles/phoenix_metrics.dir/report.cc.o" "gcc" "src/metrics/CMakeFiles/phoenix_metrics.dir/report.cc.o.d"
  "/root/repo/src/metrics/timeseries.cc" "src/metrics/CMakeFiles/phoenix_metrics.dir/timeseries.cc.o" "gcc" "src/metrics/CMakeFiles/phoenix_metrics.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/phoenix_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/phoenix_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/phoenix_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
