file(REMOVE_RECURSE
  "libphoenix_cluster.a"
)
