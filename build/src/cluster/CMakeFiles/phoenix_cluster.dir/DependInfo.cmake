
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/attributes.cc" "src/cluster/CMakeFiles/phoenix_cluster.dir/attributes.cc.o" "gcc" "src/cluster/CMakeFiles/phoenix_cluster.dir/attributes.cc.o.d"
  "/root/repo/src/cluster/builder.cc" "src/cluster/CMakeFiles/phoenix_cluster.dir/builder.cc.o" "gcc" "src/cluster/CMakeFiles/phoenix_cluster.dir/builder.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/phoenix_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/phoenix_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/constraint.cc" "src/cluster/CMakeFiles/phoenix_cluster.dir/constraint.cc.o" "gcc" "src/cluster/CMakeFiles/phoenix_cluster.dir/constraint.cc.o.d"
  "/root/repo/src/cluster/machine.cc" "src/cluster/CMakeFiles/phoenix_cluster.dir/machine.cc.o" "gcc" "src/cluster/CMakeFiles/phoenix_cluster.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
