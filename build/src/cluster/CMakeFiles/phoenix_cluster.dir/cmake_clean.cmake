file(REMOVE_RECURSE
  "CMakeFiles/phoenix_cluster.dir/attributes.cc.o"
  "CMakeFiles/phoenix_cluster.dir/attributes.cc.o.d"
  "CMakeFiles/phoenix_cluster.dir/builder.cc.o"
  "CMakeFiles/phoenix_cluster.dir/builder.cc.o.d"
  "CMakeFiles/phoenix_cluster.dir/cluster.cc.o"
  "CMakeFiles/phoenix_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/phoenix_cluster.dir/constraint.cc.o"
  "CMakeFiles/phoenix_cluster.dir/constraint.cc.o.d"
  "CMakeFiles/phoenix_cluster.dir/machine.cc.o"
  "CMakeFiles/phoenix_cluster.dir/machine.cc.o.d"
  "libphoenix_cluster.a"
  "libphoenix_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
