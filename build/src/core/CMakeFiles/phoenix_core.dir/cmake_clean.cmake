file(REMOVE_RECURSE
  "CMakeFiles/phoenix_core.dir/admission.cc.o"
  "CMakeFiles/phoenix_core.dir/admission.cc.o.d"
  "CMakeFiles/phoenix_core.dir/crv.cc.o"
  "CMakeFiles/phoenix_core.dir/crv.cc.o.d"
  "CMakeFiles/phoenix_core.dir/phoenix.cc.o"
  "CMakeFiles/phoenix_core.dir/phoenix.cc.o.d"
  "libphoenix_core.a"
  "libphoenix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
