file(REMOVE_RECURSE
  "CMakeFiles/phoenix_util.dir/flags.cc.o"
  "CMakeFiles/phoenix_util.dir/flags.cc.o.d"
  "CMakeFiles/phoenix_util.dir/format.cc.o"
  "CMakeFiles/phoenix_util.dir/format.cc.o.d"
  "CMakeFiles/phoenix_util.dir/histogram.cc.o"
  "CMakeFiles/phoenix_util.dir/histogram.cc.o.d"
  "CMakeFiles/phoenix_util.dir/thread_pool.cc.o"
  "CMakeFiles/phoenix_util.dir/thread_pool.cc.o.d"
  "libphoenix_util.a"
  "libphoenix_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
