file(REMOVE_RECURSE
  "CMakeFiles/phoenix_trace.dir/characterize.cc.o"
  "CMakeFiles/phoenix_trace.dir/characterize.cc.o.d"
  "CMakeFiles/phoenix_trace.dir/generators.cc.o"
  "CMakeFiles/phoenix_trace.dir/generators.cc.o.d"
  "CMakeFiles/phoenix_trace.dir/io.cc.o"
  "CMakeFiles/phoenix_trace.dir/io.cc.o.d"
  "CMakeFiles/phoenix_trace.dir/synthesizer.cc.o"
  "CMakeFiles/phoenix_trace.dir/synthesizer.cc.o.d"
  "CMakeFiles/phoenix_trace.dir/trace.cc.o"
  "CMakeFiles/phoenix_trace.dir/trace.cc.o.d"
  "CMakeFiles/phoenix_trace.dir/transform.cc.o"
  "CMakeFiles/phoenix_trace.dir/transform.cc.o.d"
  "libphoenix_trace.a"
  "libphoenix_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
