file(REMOVE_RECURSE
  "libphoenix_trace.a"
)
