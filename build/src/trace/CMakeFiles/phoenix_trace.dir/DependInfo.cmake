
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/characterize.cc" "src/trace/CMakeFiles/phoenix_trace.dir/characterize.cc.o" "gcc" "src/trace/CMakeFiles/phoenix_trace.dir/characterize.cc.o.d"
  "/root/repo/src/trace/generators.cc" "src/trace/CMakeFiles/phoenix_trace.dir/generators.cc.o" "gcc" "src/trace/CMakeFiles/phoenix_trace.dir/generators.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/phoenix_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/phoenix_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/synthesizer.cc" "src/trace/CMakeFiles/phoenix_trace.dir/synthesizer.cc.o" "gcc" "src/trace/CMakeFiles/phoenix_trace.dir/synthesizer.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/phoenix_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/phoenix_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/transform.cc" "src/trace/CMakeFiles/phoenix_trace.dir/transform.cc.o" "gcc" "src/trace/CMakeFiles/phoenix_trace.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/phoenix_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/phoenix_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
