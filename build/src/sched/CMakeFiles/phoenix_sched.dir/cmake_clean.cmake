file(REMOVE_RECURSE
  "CMakeFiles/phoenix_sched.dir/base.cc.o"
  "CMakeFiles/phoenix_sched.dir/base.cc.o.d"
  "CMakeFiles/phoenix_sched.dir/eagle.cc.o"
  "CMakeFiles/phoenix_sched.dir/eagle.cc.o.d"
  "CMakeFiles/phoenix_sched.dir/hawk.cc.o"
  "CMakeFiles/phoenix_sched.dir/hawk.cc.o.d"
  "CMakeFiles/phoenix_sched.dir/yaccd.cc.o"
  "CMakeFiles/phoenix_sched.dir/yaccd.cc.o.d"
  "libphoenix_sched.a"
  "libphoenix_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
