file(REMOVE_RECURSE
  "libphoenix_sched.a"
)
