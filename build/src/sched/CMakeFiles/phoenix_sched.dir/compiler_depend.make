# Empty compiler generated dependencies file for phoenix_sched.
# This may be replaced when dependencies are built.
