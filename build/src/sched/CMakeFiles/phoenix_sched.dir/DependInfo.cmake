
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/base.cc" "src/sched/CMakeFiles/phoenix_sched.dir/base.cc.o" "gcc" "src/sched/CMakeFiles/phoenix_sched.dir/base.cc.o.d"
  "/root/repo/src/sched/eagle.cc" "src/sched/CMakeFiles/phoenix_sched.dir/eagle.cc.o" "gcc" "src/sched/CMakeFiles/phoenix_sched.dir/eagle.cc.o.d"
  "/root/repo/src/sched/hawk.cc" "src/sched/CMakeFiles/phoenix_sched.dir/hawk.cc.o" "gcc" "src/sched/CMakeFiles/phoenix_sched.dir/hawk.cc.o.d"
  "/root/repo/src/sched/yaccd.cc" "src/sched/CMakeFiles/phoenix_sched.dir/yaccd.cc.o" "gcc" "src/sched/CMakeFiles/phoenix_sched.dir/yaccd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/phoenix_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/phoenix_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/phoenix_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/phoenix_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
