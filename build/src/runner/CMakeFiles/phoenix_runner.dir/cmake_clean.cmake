file(REMOVE_RECURSE
  "CMakeFiles/phoenix_runner.dir/experiment.cc.o"
  "CMakeFiles/phoenix_runner.dir/experiment.cc.o.d"
  "CMakeFiles/phoenix_runner.dir/parallel.cc.o"
  "CMakeFiles/phoenix_runner.dir/parallel.cc.o.d"
  "CMakeFiles/phoenix_runner.dir/registry.cc.o"
  "CMakeFiles/phoenix_runner.dir/registry.cc.o.d"
  "libphoenix_runner.a"
  "libphoenix_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
