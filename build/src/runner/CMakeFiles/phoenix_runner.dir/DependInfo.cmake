
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/experiment.cc" "src/runner/CMakeFiles/phoenix_runner.dir/experiment.cc.o" "gcc" "src/runner/CMakeFiles/phoenix_runner.dir/experiment.cc.o.d"
  "/root/repo/src/runner/parallel.cc" "src/runner/CMakeFiles/phoenix_runner.dir/parallel.cc.o" "gcc" "src/runner/CMakeFiles/phoenix_runner.dir/parallel.cc.o.d"
  "/root/repo/src/runner/registry.cc" "src/runner/CMakeFiles/phoenix_runner.dir/registry.cc.o" "gcc" "src/runner/CMakeFiles/phoenix_runner.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phoenix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/phoenix_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/phoenix_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/phoenix_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/phoenix_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/phoenix_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
