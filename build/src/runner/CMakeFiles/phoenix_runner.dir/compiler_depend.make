# Empty compiler generated dependencies file for phoenix_runner.
# This may be replaced when dependencies are built.
