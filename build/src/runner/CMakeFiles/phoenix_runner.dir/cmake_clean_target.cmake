file(REMOVE_RECURSE
  "libphoenix_runner.a"
)
